//! The anomaly-triggered flight recorder: an always-on, bounded,
//! lock-free ring of recent span/event records, snapshotted to a dump
//! when something goes wrong.
//!
//! Sampled tracing answers "what does a normal request look like";
//! post-mortem debugging needs the opposite — *the requests right before
//! the anomaly*. The [`FlightRecorder`] keeps the last `capacity` records
//! in fixed memory at all times. When a trigger fires (circuit-breaker
//! open, reconnect, CRC failure, quarantine, SLO burn-rate breach — see
//! [`triggers`]), the ring is snapshotted into a [`FlightDump`] that can
//! be served over the telemetry endpoint (`/flight`) or exported as
//! Chrome trace-event JSON for Perfetto.
//!
//! ## Memory and concurrency model
//!
//! The ring is a fixed array of slots; each slot is a handful of atomics
//! guarded by a per-slot sequence word (even = stable, odd = being
//! written). Writers claim a slot with one CAS and never block: a writer
//! that loses the (wrap-around) race for a slot simply drops its record
//! — the competing writer holds *newer* data. Readers validate the
//! sequence word before and after reading and skip torn slots. No locks,
//! no allocation after construction, capacity is a hard bound.
//!
//! Stage names are interned against a table seeded with every known
//! stage and trigger name, so a record is pure plain data; an unknown
//! name (none exist in-tree) records as `"?"`.

use crate::span::{stages, Span};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Well-known trigger reasons, usable as record stage names.
pub mod triggers {
    /// The offload circuit breaker opened (degraded routing begins).
    pub const BREAKER_OPEN: &str = "breaker_open";
    /// A reconnect-class failure forced connection re-establishment.
    pub const RECONNECT: &str = "reconnect_trigger";
    /// A received block failed its CRC32C and was NACKed.
    pub const CRC_FAILURE: &str = "crc_failure";
    /// A poison request was quarantined.
    pub const QUARANTINE: &str = "quarantine_trigger";
    /// An SLO burn rate breached its objective.
    pub const SLO_BURN: &str = "slo_burn";
    /// The tenant scheduler shed a request under overload.
    pub const SHED: &str = "shed_trigger";
    /// A backlogged tenant went unserved for a full starvation window.
    pub const STARVATION: &str = "starvation_trigger";
    /// The adaptive offload policy flipped a message class's route.
    pub const POLICY_FLIP: &str = "policy_flip_trigger";
    /// Operator-requested dump.
    pub const MANUAL: &str = "manual";

    /// Every trigger reason.
    pub const ALL: &[&str] = &[
        BREAKER_OPEN,
        RECONNECT,
        CRC_FAILURE,
        QUARANTINE,
        SLO_BURN,
        SHED,
        STARVATION,
        POLICY_FLIP,
        MANUAL,
    ];
}

/// One record in the flight ring: either a completed span mirrored from
/// the trace stream, or a discrete mark emitted at an instrumentation
/// site (trigger events themselves, state transitions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    /// Request identity (or site-specific id for marks).
    pub trace_id: u64,
    /// Stage or event name.
    pub stage: &'static str,
    /// Span start (== `end_ns` for marks).
    pub start_ns: u64,
    /// Span end / mark timestamp.
    pub end_ns: u64,
    /// Bytes involved (0 when not meaningful).
    pub bytes: u64,
    /// True for discrete marks, false for mirrored spans.
    pub mark: bool,
}

/// A snapshot taken when a trigger fired.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// Why the dump was taken (one of [`triggers`]).
    pub reason: &'static str,
    /// Timestamp of the trigger on the recorder's record clock.
    pub t_ns: u64,
    /// Ring contents at trigger time, oldest first.
    pub records: Vec<FlightRecord>,
}

impl FlightDump {
    /// Renders the dump as Chrome trace-event JSON (Perfetto-loadable):
    /// spans become duration (`X`) events, marks become instant (`i`)
    /// events, and the trigger itself is an instant event named
    /// `flight:{reason}`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            out.push_str(&s);
            *first = false;
        };
        for r in &self.records {
            let ev = if r.mark {
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":1,\"tid\":1,\"s\":\"g\",\
                     \"args\":{{\"trace_id\":{},\"bytes\":{},\"seq\":{}}}}}",
                    r.stage,
                    r.end_ns as f64 / 1000.0,
                    r.trace_id,
                    r.bytes,
                    r.seq
                )
            } else {
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\
                     \"tid\":1,\"args\":{{\"trace_id\":{},\"bytes\":{},\"seq\":{}}}}}",
                    r.stage,
                    r.start_ns as f64 / 1000.0,
                    r.end_ns.saturating_sub(r.start_ns) as f64 / 1000.0,
                    r.trace_id,
                    r.bytes,
                    r.seq
                )
            };
            push(ev, &mut first);
        }
        push(
            format!(
                "{{\"name\":\"flight:{}\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":1,\"tid\":1,\
                 \"s\":\"g\"}}",
                self.reason,
                self.t_ns as f64 / 1000.0
            ),
            &mut first,
        );
        out.push_str("]}");
        out
    }
}

/// One ring slot: `seq_word` even ⇒ fields are a stable record published
/// by the writer that set it; odd ⇒ a write is in progress. Every field
/// is an independent atomic, so readers can never observe torn *words* —
/// only torn *records*, which the sequence check rejects.
struct Slot {
    seq_word: AtomicU64,
    seq: AtomicU64,
    trace_id: AtomicU64,
    stage_idx: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
    bytes: AtomicU64,
    mark: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq_word: AtomicU64::new(0),
            seq: AtomicU64::new(u64::MAX),
            trace_id: AtomicU64::new(0),
            stage_idx: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            mark: AtomicU64::new(0),
        }
    }
}

struct FlightInner {
    slots: Box<[Slot]>,
    /// Monotonic record counter; `head % capacity` is the next slot.
    head: AtomicU64,
    /// Records dropped to a lost wrap-around slot race.
    dropped: AtomicU64,
    /// Trigger count (all reasons).
    trigger_count: AtomicU64,
    /// Interned stage/trigger names; index 0 is the unknown marker.
    names: Vec<&'static str>,
    /// Recent dumps, newest last, bounded by `max_dumps`.
    dumps: Mutex<VecDeque<FlightDump>>,
    max_dumps: usize,
    /// Optional metric hook: `(registry, conn-agnostic)` trigger counters.
    metrics: Mutex<Option<Arc<pbo_metrics::Registry>>>,
}

/// The always-on bounded recorder. Cheap to clone; clones share the ring.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl FlightRecorder {
    /// Creates a recorder holding the most recent `capacity` records and
    /// the `max_dumps` most recent trigger snapshots.
    pub fn new(capacity: usize, max_dumps: usize) -> Self {
        let capacity = capacity.max(1);
        let mut names = vec!["?"];
        names.extend_from_slice(stages::ALL);
        names.extend_from_slice(triggers::ALL);
        Self {
            inner: Arc::new(FlightInner {
                slots: (0..capacity).map(|_| Slot::empty()).collect(),
                head: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                trigger_count: AtomicU64::new(0),
                names,
                dumps: Mutex::new(VecDeque::new()),
                max_dumps: max_dumps.max(1),
                metrics: Mutex::new(None),
            }),
        }
    }

    /// Binds a registry: triggers count into
    /// `flight_trigger_total{reason}` and the ring's drop count exports as
    /// `flight_records_dropped_total`.
    pub fn bind_metrics(&self, registry: &Arc<pbo_metrics::Registry>) {
        *self.inner.metrics.lock() = Some(registry.clone());
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Records dropped to wrap-around slot races (distinct from plain
    /// overwriting, which is the ring working as intended).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Total triggers fired.
    pub fn trigger_count(&self) -> u64 {
        self.inner.trigger_count.load(Ordering::Relaxed)
    }

    fn intern(&self, name: &str) -> u64 {
        // Pointer fast path (all in-tree emitters pass the interned
        // statics), then a value comparison for safety.
        for (i, n) in self.inner.names.iter().enumerate() {
            if std::ptr::eq(n.as_ptr(), name.as_ptr()) || *n == name {
                return i as u64;
            }
        }
        0
    }

    /// Mirrors a completed span into the ring.
    pub fn record_span(&self, span: &Span) {
        self.record_raw(
            span.trace_id,
            span.stage,
            span.start_ns,
            span.end_ns,
            span.bytes,
            false,
        );
    }

    /// Records a discrete mark (state transition, trigger site).
    pub fn record_mark(&self, trace_id: u64, name: &'static str, t_ns: u64, bytes: u64) {
        self.record_raw(trace_id, name, t_ns, t_ns, bytes, true);
    }

    fn record_raw(
        &self,
        trace_id: u64,
        stage: &str,
        start_ns: u64,
        end_ns: u64,
        bytes: u64,
        mark: bool,
    ) {
        let inner = &*self.inner;
        let seq = inner.head.fetch_add(1, Ordering::Relaxed);
        let slot = &inner.slots[(seq % inner.slots.len() as u64) as usize];
        // Claim: even -> odd. Losing the CAS means another writer already
        // lapped us onto this slot with a newer record — drop ours.
        let word = slot.seq_word.load(Ordering::Acquire);
        if word % 2 == 1
            || slot
                .seq_word
                .compare_exchange(word, word + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.seq.store(seq, Ordering::Relaxed);
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.stage_idx.store(self.intern(stage), Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.end_ns.store(end_ns, Ordering::Relaxed);
        slot.bytes.store(bytes, Ordering::Relaxed);
        slot.mark.store(mark as u64, Ordering::Relaxed);
        // Publish: odd -> even (a new even value, so readers that loaded
        // the pre-claim word also notice).
        slot.seq_word.store(word + 2, Ordering::Release);
    }

    /// Snapshots the ring, oldest record first. Torn slots (a writer in
    /// flight) are skipped rather than blocked on.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let inner = &*self.inner;
        let mut out = Vec::with_capacity(inner.slots.len());
        for slot in inner.slots.iter() {
            let w1 = slot.seq_word.load(Ordering::Acquire);
            if w1 % 2 == 1 {
                continue;
            }
            let rec = FlightRecord {
                seq: slot.seq.load(Ordering::Relaxed),
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                stage: inner.names
                    [(slot.stage_idx.load(Ordering::Relaxed) as usize).min(inner.names.len() - 1)],
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                end_ns: slot.end_ns.load(Ordering::Relaxed),
                bytes: slot.bytes.load(Ordering::Relaxed),
                mark: slot.mark.load(Ordering::Relaxed) != 0,
            };
            let w2 = slot.seq_word.load(Ordering::Acquire);
            if w1 != w2 || rec.seq == u64::MAX {
                continue;
            }
            out.push(rec);
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Fires a trigger: snapshots the ring into a [`FlightDump`], retains
    /// it (bounded), counts it, and returns it.
    pub fn trigger(&self, reason: &'static str, t_ns: u64) -> FlightDump {
        let dump = FlightDump {
            reason,
            t_ns,
            records: self.snapshot(),
        };
        self.inner.trigger_count.fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = self.inner.metrics.lock().clone() {
            reg.counter(
                "flight_trigger_total",
                "Flight-recorder dumps taken, by trigger reason",
                &[("reason", reason)],
            )
            .inc();
            reg.counter(
                "flight_records_dropped_total",
                "Flight records dropped to wrap-around slot races",
                &[],
            )
            .inc_by(
                self.dropped().saturating_sub(
                    reg.counter_value("flight_records_dropped_total", &[])
                        .unwrap_or(0),
                ),
            );
        }
        let mut dumps = self.inner.dumps.lock();
        if dumps.len() == self.inner.max_dumps {
            dumps.pop_front();
        }
        dumps.push_back(dump.clone());
        dump
    }

    /// The retained dumps, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.inner.dumps.lock().iter().cloned().collect()
    }

    /// The most recent dump, if any trigger has fired.
    pub fn last_dump(&self) -> Option<FlightDump> {
        self.inner.dumps.lock().back().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, stage: &'static str, t: u64) -> Span {
        Span {
            trace_id: id,
            stage,
            start_ns: t,
            end_ns: t + 10,
            bytes: 64,
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let fr = FlightRecorder::new(8, 2);
        for i in 0..100u64 {
            fr.record_span(&span(i, stages::DESERIALIZE, i * 100));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 8, "ring must never exceed capacity");
        let ids: Vec<u64> = snap.iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, (92..100).collect::<Vec<_>>(), "oldest evicted first");
        assert_eq!(fr.capacity(), 8);
    }

    #[test]
    fn trigger_snapshots_contain_the_triggering_mark() {
        let fr = FlightRecorder::new(16, 2);
        fr.record_span(&span(1, stages::RDMA_WRITE, 100));
        fr.record_mark(7, triggers::CRC_FAILURE, 250, 4096);
        let dump = fr.trigger(triggers::CRC_FAILURE, 260);
        assert_eq!(dump.reason, triggers::CRC_FAILURE);
        let mark = dump
            .records
            .iter()
            .find(|r| r.mark)
            .expect("triggering mark present in dump");
        assert_eq!(mark.stage, triggers::CRC_FAILURE);
        assert_eq!(mark.trace_id, 7);
        assert_eq!(mark.bytes, 4096);
        assert_eq!(fr.trigger_count(), 1);
        assert_eq!(fr.dumps().len(), 1);
    }

    #[test]
    fn dump_retention_is_bounded() {
        let fr = FlightRecorder::new(4, 2);
        fr.trigger(triggers::MANUAL, 1);
        fr.trigger(triggers::BREAKER_OPEN, 2);
        fr.trigger(triggers::RECONNECT, 3);
        let dumps = fr.dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].reason, triggers::BREAKER_OPEN);
        assert_eq!(fr.last_dump().unwrap().reason, triggers::RECONNECT);
    }

    #[test]
    fn chrome_json_has_span_mark_and_trigger_events() {
        let fr = FlightRecorder::new(8, 1);
        fr.record_span(&span(3, stages::HOST_DISPATCH, 1000));
        fr.record_mark(3, triggers::QUARANTINE, 1500, 0);
        let json = fr.trigger(triggers::QUARANTINE, 1600).to_chrome_json();
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("host_dispatch"));
        assert!(json.contains("flight:quarantine_trigger"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn concurrent_writers_stay_within_capacity_without_locking() {
        let fr = FlightRecorder::new(64, 1);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let fr = fr.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    fr.record_span(&span(t * 100_000 + i, stages::DMA, i));
                }
            }));
        }
        // A reader racing the writers must only ever see valid records.
        for _ in 0..200 {
            for r in fr.snapshot() {
                assert!(!r.stage.is_empty());
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = fr.snapshot();
        assert!(snap.len() <= 64);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(snap.iter().all(|r| r.seq < 80_000));
        // A dropped write leaves its slot holding an older lap's record,
        // so the freshness bound is only exact when nothing was dropped.
        if fr.dropped() == 0 {
            let min_seq = snap.iter().map(|r| r.seq).min().unwrap();
            assert_eq!(min_seq, 80_000 - 64);
        }
    }

    #[test]
    fn metrics_binding_counts_triggers() {
        let reg = Arc::new(pbo_metrics::Registry::new());
        let fr = FlightRecorder::new(4, 2);
        fr.bind_metrics(&reg);
        fr.trigger(triggers::BREAKER_OPEN, 10);
        fr.trigger(triggers::BREAKER_OPEN, 20);
        fr.trigger(triggers::SLO_BURN, 30);
        assert_eq!(
            reg.counter_value("flight_trigger_total", &[("reason", "breaker_open")]),
            Some(2)
        );
        assert_eq!(
            reg.counter_value("flight_trigger_total", &[("reason", "slo_burn")]),
            Some(1)
        );
    }
}
