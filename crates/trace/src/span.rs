//! Span records and bounded per-thread collection buffers.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Well-known datapath stage names, in datapath order.
///
/// Everything that emits spans uses these constants so exporters, docs,
/// and CI validation agree on the vocabulary.
pub mod stages {
    /// xRPC protocol termination on the DPU (frame received → forwarded).
    pub const TERMINATE: &str = "terminate";
    /// Time a request spent queued in the tenant scheduler between
    /// admission and being handed to the offload datapath.
    pub const SCHED_WAIT: &str = "sched_wait";
    /// Protobuf deserialization into the native host layout.
    pub const DESERIALIZE: &str = "deserialize";
    /// Building/appending the message into an open RDMA block.
    pub const BLOCK_BUILD: &str = "block_build";
    /// Waiting for send credits before a block could be posted.
    pub const CREDIT_WAIT: &str = "credit_wait";
    /// RDMA write-with-immediate of a sealed block.
    pub const RDMA_WRITE: &str = "rdma_write";
    /// PCIe/DMA transfer of block bytes.
    pub const DMA: &str = "dma";
    /// Host-side handler execution for one request.
    pub const HOST_DISPATCH: &str = "host_dispatch";
    /// Building the response message into a response block.
    pub const RESPONSE_BUILD: &str = "response_build";
    /// Client-visible wait from block post until the response callback.
    pub const RESPONSE: &str = "response";
    /// Backoff window between a transient post failure and the successful
    /// retry of the same sealed block.
    pub const RETRY: &str = "retry";
    /// Connection supervision: teardown, re-establishment, and in-flight
    /// replay after a reconnect-class failure.
    pub const RECONNECT: &str = "reconnect";
    /// Interval a request spent routed over the degraded (host-side
    /// deserialization) path while the offload circuit breaker was open.
    pub const DEGRADED: &str = "degraded";
    /// A malformed (poison) request was rejected with a per-request error
    /// response instead of entering the datapath.
    pub const QUARANTINE: &str = "quarantine";
    /// The adaptive offload policy flipped a message class between the
    /// DPU-deserialize and host-deserialize routes.
    pub const POLICY_FLIP: &str = "policy_flip";

    /// Every stage name the datapath can emit, in datapath order.
    pub const ALL: &[&str] = &[
        TERMINATE,
        SCHED_WAIT,
        DESERIALIZE,
        BLOCK_BUILD,
        CREDIT_WAIT,
        RDMA_WRITE,
        DMA,
        HOST_DISPATCH,
        RESPONSE_BUILD,
        RESPONSE,
        RETRY,
        RECONNECT,
        DEGRADED,
        QUARANTINE,
        POLICY_FLIP,
    ];
}

/// One completed interval of work attributed to a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Request identity; equal on both sides of the wire (see
    /// [`crate::ConnTracer`]).
    pub trace_id: u64,
    /// Stage name, one of [`stages`].
    pub stage: &'static str,
    /// Start timestamp on the tracer's clock, nanoseconds.
    pub start_ns: u64,
    /// End timestamp on the tracer's clock, nanoseconds.
    pub end_ns: u64,
    /// Bytes the stage handled (0 when not meaningful).
    pub bytes: u64,
}

impl Span {
    /// Span duration in nanoseconds (0 if the clock didn't advance).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

pub(crate) struct SinkShared {
    pub(crate) name: String,
    pub(crate) buf: Mutex<VecDeque<Span>>,
    pub(crate) capacity: usize,
    pub(crate) dropped: Mutex<u64>,
}

/// Handle to one named ring buffer of spans (one per datapath thread).
///
/// Recording is lock-cheap (one uncontended mutex per sampled span) and
/// bounded: when the ring is full the oldest span is dropped and counted,
/// so a long run cannot grow memory without bound.
#[derive(Clone)]
pub struct SpanSink {
    pub(crate) shared: Arc<SinkShared>,
    pub(crate) recorder: Option<crate::tracer::StageRecorder>,
    pub(crate) flight: Option<crate::flight::FlightRecorder>,
    pub(crate) slo: Option<pbo_metrics::SloTracker>,
}

impl SpanSink {
    /// Records a completed span (and feeds it into the bound per-stage
    /// histogram, flight recorder, and SLO tracker, when attached).
    pub fn record(&self, span: Span) {
        if let Some(rec) = &self.recorder {
            rec.observe(span.stage, span.duration_ns());
        }
        if let Some(flight) = &self.flight {
            flight.record_span(&span);
        }
        if let Some(slo) = &self.slo {
            slo.observe_stage(span.stage, span.end_ns, span.duration_ns() as f64);
        }
        let mut buf = self.shared.buf.lock();
        if buf.len() == self.shared.capacity {
            buf.pop_front();
            *self.shared.dropped.lock() += 1;
        }
        buf.push_back(span);
    }

    /// The sink's thread/track name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.shared.buf.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(capacity: usize) -> SpanSink {
        SpanSink {
            shared: Arc::new(SinkShared {
                name: "t".into(),
                buf: Mutex::new(VecDeque::new()),
                capacity,
                dropped: Mutex::new(0),
            }),
            recorder: None,
            flight: None,
            slo: None,
        }
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let s = sink(2);
        for i in 0..3u64 {
            s.record(Span {
                trace_id: i,
                stage: stages::TERMINATE,
                start_ns: i,
                end_ns: i + 1,
                bytes: 0,
            });
        }
        let buf = s.shared.buf.lock();
        let ids: Vec<u64> = buf.iter().map(|s| s.trace_id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(*s.shared.dropped.lock(), 1);
    }

    #[test]
    fn duration_saturates() {
        let s = Span {
            trace_id: 0,
            stage: stages::DMA,
            start_ns: 10,
            end_ns: 4,
            bytes: 0,
        };
        assert_eq!(s.duration_ns(), 0);
    }
}
