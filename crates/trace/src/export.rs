//! Exporters: Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and text summaries (per-request waterfall,
//! per-stage latency table).

use crate::span::Span;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One process row in a Chrome trace: a scenario (e.g. "offload" vs
/// "baseline") with its tracks of spans.
pub struct TraceProcess {
    /// Chrome `pid`; keep distinct per scenario.
    pub pid: u32,
    /// Process display name.
    pub name: String,
    /// `(track_name, spans)` — one Chrome `tid` per track, numbered in
    /// order.
    pub tracks: Vec<(String, Vec<Span>)>,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders processes as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}` with `"X"` complete events and `"M"`
/// name metadata). Timestamps are microseconds, as the format requires.
pub fn chrome_trace_json(processes: &[TraceProcess]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: &str, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(s);
    };
    for proc in processes {
        let mut ev = String::new();
        let _ = write!(
            ev,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"",
            proc.pid
        );
        escape_json(&proc.name, &mut ev);
        ev.push_str("\"}}");
        emit(&ev, &mut out);
        for (tid0, (track, spans)) in proc.tracks.iter().enumerate() {
            let tid = tid0 as u32 + 1;
            let mut ev = String::new();
            let _ = write!(
                ev,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\"args\":{{\"name\":\"",
                proc.pid
            );
            escape_json(track, &mut ev);
            ev.push_str("\"}}");
            emit(&ev, &mut out);
            for span in spans {
                let ts_us = span.start_ns as f64 / 1000.0;
                let dur_us = span.duration_ns() as f64 / 1000.0;
                let mut ev = String::new();
                let _ = write!(
                    ev,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\
                     \"pid\":{},\"tid\":{tid},\"args\":{{\"trace_id\":{},\"bytes\":{}}}}}",
                    span.stage, proc.pid, span.trace_id, span.bytes
                );
                emit(&ev, &mut out);
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Aggregate statistics for one stage across sampled spans.
#[derive(Clone, Debug)]
pub struct StageStats {
    /// Stage name.
    pub stage: &'static str,
    /// Sampled span count.
    pub count: u64,
    /// Mean duration, ns.
    pub mean_ns: f64,
    /// Median duration, ns.
    pub p50_ns: u64,
    /// 99th-percentile duration, ns.
    pub p99_ns: u64,
    /// Total bytes across spans.
    pub bytes: u64,
}

/// Aggregates spans per stage, ordered by the canonical stage order
/// (unknown stages last, alphabetically).
pub fn stage_stats(spans: &[Span]) -> Vec<StageStats> {
    let mut by_stage: BTreeMap<&'static str, (Vec<u64>, u64)> = BTreeMap::new();
    for s in spans {
        let e = by_stage.entry(s.stage).or_default();
        e.0.push(s.duration_ns());
        e.1 += s.bytes;
    }
    let order = |stage: &str| {
        crate::span::stages::ALL
            .iter()
            .position(|s| *s == stage)
            .unwrap_or(usize::MAX)
    };
    let mut stats: Vec<StageStats> = by_stage
        .into_iter()
        .map(|(stage, (mut durs, bytes))| {
            durs.sort_unstable();
            let count = durs.len() as u64;
            let sum: u64 = durs.iter().sum();
            // Nearest-rank percentile: ceil(q*n) - 1.
            let pct = |q: f64| durs[((q * durs.len() as f64).ceil() as usize).max(1) - 1];
            StageStats {
                stage,
                count,
                mean_ns: sum as f64 / count as f64,
                p50_ns: pct(0.50),
                p99_ns: pct(0.99),
                bytes,
            }
        })
        .collect();
    stats.sort_by_key(|s| (order(s.stage), s.stage));
    stats
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

/// Renders a per-stage latency table.
pub fn stage_table(title: &str, spans: &[Span]) -> String {
    let stats = stage_stats(spans);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "  {:<16} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "stage", "count", "mean", "p50", "p99", "bytes"
    );
    for s in &stats {
        let _ = writeln!(
            out,
            "  {:<16} {:>8} {:>12} {:>12} {:>12} {:>12}",
            s.stage,
            s.count,
            fmt_ns(s.mean_ns),
            fmt_ns(s.p50_ns as f64),
            fmt_ns(s.p99_ns as f64),
            s.bytes
        );
    }
    out
}

/// Renders an aligned text waterfall of one request's span chain:
/// stages in start order, each with an offset/duration bar.
pub fn waterfall(trace_id: u64, spans: &[Span]) -> String {
    let mut chain: Vec<&Span> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    chain.sort_by_key(|s| (s.start_ns, s.end_ns));
    let mut out = String::new();
    let _ = writeln!(out, "trace {trace_id:#018x}");
    let Some(first) = chain.first() else {
        let _ = writeln!(out, "  (no spans)");
        return out;
    };
    let t0 = first.start_ns;
    let t_end = chain.iter().map(|s| s.end_ns).max().unwrap_or(t0);
    let total = (t_end - t0).max(1);
    const WIDTH: u64 = 40;
    for s in &chain {
        let off = (s.start_ns - t0) * WIDTH / total;
        let len = (s.duration_ns() * WIDTH / total)
            .max(1)
            .min(WIDTH - off.min(WIDTH - 1));
        let bar: String = std::iter::repeat_n(' ', off as usize)
            .chain(std::iter::repeat_n('#', len as usize))
            .collect();
        let _ = writeln!(
            out,
            "  {:<16} [{bar:<width$}] +{:<10} {}",
            s.stage,
            fmt_ns((s.start_ns - t0) as f64),
            fmt_ns(s.duration_ns() as f64),
            width = WIDTH as usize,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::stages;

    fn spans() -> Vec<Span> {
        vec![
            Span {
                trace_id: 7,
                stage: stages::TERMINATE,
                start_ns: 1000,
                end_ns: 2000,
                bytes: 128,
            },
            Span {
                trace_id: 7,
                stage: stages::DESERIALIZE,
                start_ns: 2000,
                end_ns: 4500,
                bytes: 128,
            },
            Span {
                trace_id: 9,
                stage: stages::DESERIALIZE,
                start_ns: 3000,
                end_ns: 3500,
                bytes: 64,
            },
        ]
    }

    #[test]
    fn chrome_json_shape() {
        let json = chrome_trace_json(&[TraceProcess {
            pid: 0,
            name: "offload".into(),
            tracks: vec![("dpu\"client".into(), spans())],
        }]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"terminate\""));
        assert!(json.contains("dpu\\\"client")); // name was escaped
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn stage_stats_aggregate_in_datapath_order() {
        let stats = stage_stats(&spans());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].stage, stages::TERMINATE);
        assert_eq!(stats[1].stage, stages::DESERIALIZE);
        assert_eq!(stats[1].count, 2);
        assert_eq!(stats[1].bytes, 192);
        assert_eq!(stats[1].p50_ns, 500);
        assert_eq!(stats[1].p99_ns, 2500);
    }

    #[test]
    fn waterfall_filters_by_trace_id() {
        let text = waterfall(7, &spans());
        assert!(text.contains("terminate"));
        assert!(text.contains("deserialize"));
        assert_eq!(text.matches('\n').count(), 3); // header + 2 spans
        let none = waterfall(42, &spans());
        assert!(none.contains("(no spans)"));
    }

    #[test]
    fn stage_table_renders_rows() {
        let t = stage_table("stagebreak", &spans());
        assert!(t.contains("stagebreak"));
        assert!(t.contains("terminate"));
        assert!(t.contains("p99"));
    }
}
