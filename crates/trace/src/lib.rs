//! End-to-end datapath tracing for the offload RPC pipeline.
//!
//! A [`Tracer`] hands out per-thread ring-buffered [`SpanSink`]s and a
//! per-connection [`ConnTracer`] whose request identities — and therefore
//! 1-in-N sampling decisions — are identical on both ends of a connection
//! without any id bytes on the wire, by mirroring the datapath's
//! deterministic request-id synchronization (paper §IV.D).
//!
//! Spans cover the full offload path: protocol termination on the DPU,
//! deserialize-into-native-layout, block build, credit wait, RDMA
//! write-with-immediate, PCIe DMA, host dispatch, response build, and
//! the client-visible response wait (see [`stages`]). Collected spans
//! export as Chrome trace-event JSON ([`chrome_trace_json`], loadable in
//! Perfetto) or as text summaries ([`stage_table`], [`waterfall`]), and
//! optionally feed per-stage latency histograms into a
//! `pbo-metrics` [`pbo_metrics::Registry`].
//!
//! Simulation backends stamp spans from a [`VirtualClock`] so wall-clock
//! runs and discrete-event runs produce the same span stream shape.
//!
//! Sampling defaults to off; a disabled tracer costs one branch per
//! instrumentation site.

mod clock;
mod export;
mod flight;
mod span;
mod tracer;

pub use clock::{Clock, VirtualClock};
pub use export::{
    chrome_trace_json, stage_stats, stage_table, waterfall, StageStats, TraceProcess,
};
pub use flight::{triggers, FlightDump, FlightRecord, FlightRecorder};
pub use span::{stages, Span, SpanSink};
pub use tracer::{ConnTracer, MsgCtx, TraceConfig, Tracer, STAGE_HISTOGRAM_METRIC};
