//! Reliable-connection queue pairs.
//!
//! Semantics reproduced from verbs (§II.A):
//!
//! * **Reliable, in-order delivery** per connection — the property the
//!   protocol exploits for implicit acknowledgments and request-ID
//!   synchronization (§IV.B, §IV.D).
//! * **Write-with-immediate** is *two-sided*: it writes into the remote
//!   memory region without remote CPU involvement, consumes one posted
//!   receive on the responder, and delivers 4 bytes of immediate data in
//!   the responder's completion.
//! * **Two-sided send/receive** copies into the responder's posted receive
//!   buffer (used by setup/control traffic such as ADT transfer).
//! * Posting to a queue pair whose responder has no receives outstanding
//!   fails (receiver-not-ready) — the situation the credit system must
//!   make impossible.

use crate::cq::{CompletionQueue, Cqe, CqeKind};
use crate::fault::{FaultInjector, FaultKind};
use crate::pcie::{Direction, PcieLink};
use crate::region::MemoryRegion;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Caller-chosen identifier echoed in completions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkRequestId(pub u64);

/// A posted receive's landing buffer (used by two-sided sends; plain
/// write-with-immediate receives need no buffer — the initiator names the
/// destination).
#[derive(Clone, Debug)]
pub struct RecvBufferSlot {
    /// Destination region.
    pub mr: MemoryRegion,
    /// Destination offset.
    pub offset: usize,
    /// Capacity of the slot.
    pub len: usize,
}

/// Errors surfaced by queue-pair operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QpError {
    /// Responder had no posted receive for a two-sided operation.
    ReceiverNotReady,
    /// A memory region from a foreign protection domain was used.
    PdMismatch {
        /// The QP's protection domain.
        qp_pd: u32,
        /// The offending region's domain.
        mr_pd: u32,
    },
    /// The responder's posted receive buffer is smaller than the payload.
    RecvBufferTooSmall {
        /// Payload length.
        needed: usize,
        /// Posted capacity.
        available: usize,
    },
    /// A completion queue overflowed — credits failed to bound the flight.
    CqOverflow,
    /// An injected fault fired.
    Fault(FaultKind),
    /// The peer endpoint was dropped.
    Disconnected,
}

impl std::fmt::Display for QpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpError::ReceiverNotReady => write!(f, "receiver not ready (no posted receive)"),
            QpError::PdMismatch { qp_pd, mr_pd } => {
                write!(
                    f,
                    "protection-domain mismatch: QP in {qp_pd}, MR in {mr_pd}"
                )
            }
            QpError::RecvBufferTooSmall { needed, available } => {
                write!(
                    f,
                    "posted receive too small: need {needed}, have {available}"
                )
            }
            QpError::CqOverflow => write!(f, "completion queue overflow"),
            QpError::Fault(k) => write!(f, "injected fault: {k:?}"),
            QpError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for QpError {}

/// The receive-side state of one endpoint, touched by the *peer's* posts.
pub(crate) struct Responder {
    pub(crate) recv_queue: Mutex<VecDeque<(WorkRequestId, Option<RecvBufferSlot>)>>,
    pub(crate) recv_cq: CompletionQueue,
    pub(crate) qp_num: u32,
    pub(crate) alive: AtomicBool,
    /// Serializes the peer's posts so delivery order matches post order.
    pub(crate) order: Mutex<()>,
    /// Completions held back by [`FaultKind::DelayedCompletion`]; drained
    /// ahead of the next delivery so RC ordering is preserved.
    pub(crate) delayed: Mutex<VecDeque<Cqe>>,
}

static NEXT_QPN: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_qpn() -> u32 {
    NEXT_QPN.fetch_add(1, Ordering::Relaxed) as u32
}

/// One endpoint of a reliable connection.
pub struct QueuePair {
    pub(crate) qp_num: u32,
    pub(crate) pd: u32,
    pub(crate) send_cq: CompletionQueue,
    pub(crate) local: Arc<Responder>,
    pub(crate) peer: Arc<Responder>,
    pub(crate) link: PcieLink,
    pub(crate) dir_to_peer: Direction,
    pub(crate) faults: FaultInjector,
    pub(crate) rnr_count: AtomicU64,
    /// Wall-clock duration of the most recent DMA copy posted from this
    /// endpoint, for tracers that attribute transfer time to requests.
    pub(crate) last_dma_ns: AtomicU64,
}

impl Drop for QueuePair {
    fn drop(&mut self) {
        self.local.alive.store(false, Ordering::Release);
    }
}

impl QueuePair {
    /// This endpoint's queue-pair number.
    pub fn qp_num(&self) -> u32 {
        self.qp_num
    }

    /// The send-side completion queue.
    pub fn send_cq(&self) -> &CompletionQueue {
        &self.send_cq
    }

    /// The receive-side completion queue.
    pub fn recv_cq(&self) -> &CompletionQueue {
        &self.local.recv_cq
    }

    /// Receives currently posted and unconsumed.
    pub fn posted_recvs(&self) -> usize {
        self.local.recv_queue.lock().len()
    }

    /// Receiver-not-ready events observed by this sender.
    pub fn rnr_events(&self) -> u64 {
        self.rnr_count.load(Ordering::Relaxed)
    }

    /// Wall-clock nanoseconds the most recent successful post from this
    /// endpoint spent in its DMA copy (0 before the first post).
    pub fn last_dma_duration_ns(&self) -> u64 {
        self.last_dma_ns.load(Ordering::Relaxed)
    }

    /// Posts a receive. For write-with-immediate traffic `slot` may be
    /// `None`; for two-sided sends it names the landing buffer.
    pub fn post_recv(&self, wr_id: WorkRequestId, slot: Option<RecvBufferSlot>) {
        if let Some(s) = &slot {
            assert_eq!(
                s.mr.pd_id(),
                self.pd,
                "posted receive buffer from foreign protection domain"
            );
        }
        self.local.recv_queue.lock().push_back((wr_id, slot));
    }

    /// Validates the post and consults the fault plane. Loud faults come
    /// back as `Err`; the kinds the post body must *absorb* rather than
    /// fail on — [`FaultKind::DelayedCompletion`], [`FaultKind::DroppedAck`]
    /// and the silent [`FaultKind::BitFlip`] — come back as
    /// `Ok(Some(kind))`.
    fn precheck(&self, local_mr: &MemoryRegion) -> Result<Option<FaultKind>, QpError> {
        if local_mr.pd_id() != self.pd {
            return Err(QpError::PdMismatch {
                qp_pd: self.pd,
                mr_pd: local_mr.pd_id(),
            });
        }
        if !self.peer.alive.load(Ordering::Acquire) {
            return Err(QpError::Disconnected);
        }
        match self.faults.check() {
            None => Ok(None),
            Some(
                k @ (FaultKind::DelayedCompletion | FaultKind::DroppedAck | FaultKind::BitFlip),
            ) => Ok(Some(k)),
            Some(FaultKind::ConnectionKill) => {
                self.poison();
                Err(QpError::Fault(FaultKind::ConnectionKill))
            }
            Some(k) => Err(QpError::Fault(k)),
        }
    }

    /// Kills the connection: both endpoints fail subsequent posts with
    /// [`QpError::Disconnected`]. Used by fault injection and by
    /// supervisors tearing down a half-dead connection.
    pub fn poison(&self) {
        self.local.alive.store(false, Ordering::Release);
        self.peer.alive.store(false, Ordering::Release);
    }

    /// Delivers a receive-side completion to the peer, honoring delayed
    /// completions: held-back CQEs drain first (preserving RC order), and
    /// a `delay`ed CQE joins the holding queue instead of the CQ. Caller
    /// must hold the peer's order lock.
    fn deliver_recv_cqe(&self, cqe: Cqe, delay: bool) -> Result<(), QpError> {
        let mut held = self.peer.delayed.lock();
        if delay {
            held.push_back(cqe);
            return Ok(());
        }
        while let Some(d) = held.pop_front() {
            if !self.peer.recv_cq.push(d) {
                return Err(QpError::CqOverflow);
            }
        }
        if !self.peer.recv_cq.push(cqe) {
            return Err(QpError::CqOverflow);
        }
        Ok(())
    }

    /// [`FaultKind::DroppedAck`]: the initiator sees success (including a
    /// send completion if requested) but nothing is delivered, and the
    /// connection is poisoned so the loss cannot silently desynchronize
    /// the protocol's deterministic ID replay.
    fn drop_ack(&self, wr_id: WorkRequestId, signaled: bool) -> Result<(), QpError> {
        self.poison();
        if signaled
            && !self.send_cq.push(Cqe {
                wr_id: wr_id.0,
                kind: CqeKind::SendComplete,
                qp_num: self.qp_num,
            })
        {
            return Err(QpError::CqOverflow);
        }
        Ok(())
    }

    /// RDMA write-with-immediate: copies
    /// `local_mr[local_off .. local_off+len]` into
    /// `remote_mr[remote_off ..]`, consuming one posted receive on the
    /// responder and delivering `imm` in its completion. The responder's
    /// CPU is not involved in the data movement.
    ///
    /// `signaled` requests a send-side completion as well.
    #[allow(clippy::too_many_arguments)]
    pub fn post_write_imm(
        &self,
        wr_id: WorkRequestId,
        local_mr: &MemoryRegion,
        local_off: usize,
        len: usize,
        remote_mr: &MemoryRegion,
        remote_off: usize,
        imm: u32,
        signaled: bool,
    ) -> Result<(), QpError> {
        let fault = self.precheck(local_mr)?;
        if fault == Some(FaultKind::DroppedAck) {
            return self.drop_ack(wr_id, signaled);
        }
        // Hold the ordering lock across consume-copy-complete so that the
        // responder observes posts in post order (RC in-order delivery).
        let _order = self.peer.order.lock();
        let consumed = self.peer.recv_queue.lock().pop_front();
        let Some((recv_id, _slot)) = consumed else {
            self.rnr_count.fetch_add(1, Ordering::Relaxed);
            return Err(QpError::ReceiverNotReady);
        };
        let dma_start = std::time::Instant::now();
        MemoryRegion::dma_copy(local_mr, local_off, remote_mr, remote_off, len);
        if fault == Some(FaultKind::BitFlip) && len > 0 {
            // Silent corruption *after* the DMA copy: one bit of the
            // delivered bytes flips, the completion (and immediate) is
            // still delivered normally, and the initiator sees success.
            // The flipped position is a pure function of the post, keeping
            // runs deterministic. Retransmits of the same block advance
            // the fault-plane op counter, so a retransmit is only
            // re-corrupted if another BitFlip is scheduled for it.
            let bit = (imm as usize)
                .wrapping_mul(7)
                .wrapping_add(len)
                .wrapping_add(13)
                % (len * 8);
            let mut byte = remote_mr.read(remote_off + bit / 8, 1);
            byte[0] ^= 1 << (bit % 8);
            remote_mr.write(remote_off + bit / 8, &byte);
        }
        self.last_dma_ns
            .store(dma_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.link.record(self.dir_to_peer, len as u64);
        self.deliver_recv_cqe(
            Cqe {
                wr_id: recv_id.0,
                kind: CqeKind::RecvWriteImm {
                    imm,
                    len: len as u32,
                },
                qp_num: self.peer.qp_num,
            },
            fault == Some(FaultKind::DelayedCompletion),
        )?;
        if signaled
            && !self.send_cq.push(Cqe {
                wr_id: wr_id.0,
                kind: CqeKind::SendComplete,
                qp_num: self.qp_num,
            })
        {
            return Err(QpError::CqOverflow);
        }
        Ok(())
    }

    /// Two-sided send: copies the payload into the responder's posted
    /// receive buffer.
    pub fn post_send(
        &self,
        wr_id: WorkRequestId,
        local_mr: &MemoryRegion,
        local_off: usize,
        len: usize,
        signaled: bool,
    ) -> Result<(), QpError> {
        let fault = self.precheck(local_mr)?;
        if fault == Some(FaultKind::DroppedAck) {
            return self.drop_ack(wr_id, signaled);
        }
        let _order = self.peer.order.lock();
        let consumed = self.peer.recv_queue.lock().pop_front();
        let Some((recv_id, slot)) = consumed else {
            self.rnr_count.fetch_add(1, Ordering::Relaxed);
            return Err(QpError::ReceiverNotReady);
        };
        let Some(slot) = slot else {
            // A bufferless receive cannot absorb a two-sided send; the
            // responder posted the wrong kind. Surface as too-small.
            return Err(QpError::RecvBufferTooSmall {
                needed: len,
                available: 0,
            });
        };
        if slot.len < len {
            return Err(QpError::RecvBufferTooSmall {
                needed: len,
                available: slot.len,
            });
        }
        MemoryRegion::dma_copy(local_mr, local_off, &slot.mr, slot.offset, len);
        self.link.record(self.dir_to_peer, len as u64);
        self.deliver_recv_cqe(
            Cqe {
                wr_id: recv_id.0,
                kind: CqeKind::Recv { len: len as u32 },
                qp_num: self.peer.qp_num,
            },
            fault == Some(FaultKind::DelayedCompletion),
        )?;
        if signaled
            && !self.send_cq.push(Cqe {
                wr_id: wr_id.0,
                kind: CqeKind::SendComplete,
                qp_num: self.qp_num,
            })
        {
            return Err(QpError::CqOverflow);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::connect_pair;
    use crate::region::ProtectionDomain;

    fn pair() -> (QueuePair, QueuePair, ProtectionDomain, ProtectionDomain) {
        let pd_a = ProtectionDomain::new();
        let pd_b = ProtectionDomain::new();
        let (a, b) = connect_pair(&pd_a, &pd_b, 64, PcieLink::new(), FaultInjector::new());
        (a, b, pd_a, pd_b)
    }

    #[test]
    fn write_imm_moves_bytes_and_delivers_imm() {
        let (a, b, pd_a, pd_b) = pair();
        let src = pd_a.register(128);
        let dst = pd_b.register(128);
        src.write(16, b"payload!");
        b.post_recv(WorkRequestId(700), None);
        a.post_write_imm(WorkRequestId(1), &src, 16, 8, &dst, 64, 0xabcd, true)
            .unwrap();

        assert_eq!(&dst.read(64, 8), b"payload!");
        let rx = b.recv_cq().poll(4);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].wr_id, 700);
        assert_eq!(
            rx[0].kind,
            CqeKind::RecvWriteImm {
                imm: 0xabcd,
                len: 8
            }
        );
        let tx = a.send_cq().poll(4);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].wr_id, 1);
    }

    #[test]
    fn unsignaled_write_skips_send_cqe() {
        let (a, b, pd_a, pd_b) = pair();
        let src = pd_a.register(32);
        let dst = pd_b.register(32);
        b.post_recv(WorkRequestId(0), None);
        a.post_write_imm(WorkRequestId(1), &src, 0, 4, &dst, 0, 1, false)
            .unwrap();
        assert!(a.send_cq().poll(4).is_empty());
        assert_eq!(b.recv_cq().poll(4).len(), 1);
    }

    #[test]
    fn rnr_when_no_posted_receive() {
        let (a, _b, pd_a, pd_b) = pair();
        let src = pd_a.register(32);
        let dst = pd_b.register(32);
        let err = a
            .post_write_imm(WorkRequestId(1), &src, 0, 4, &dst, 0, 0, true)
            .unwrap_err();
        assert_eq!(err, QpError::ReceiverNotReady);
        assert_eq!(a.rnr_events(), 1);
    }

    #[test]
    fn pd_mismatch_rejected() {
        let (a, b, _pd_a, pd_b) = pair();
        let foreign = ProtectionDomain::new().register(32);
        let dst = pd_b.register(32);
        b.post_recv(WorkRequestId(0), None);
        let err = a
            .post_write_imm(WorkRequestId(1), &foreign, 0, 4, &dst, 0, 0, true)
            .unwrap_err();
        assert!(matches!(err, QpError::PdMismatch { .. }));
    }

    #[test]
    fn two_sided_send_lands_in_posted_buffer() {
        let (a, b, pd_a, pd_b) = pair();
        let src = pd_a.register(64);
        let landing = pd_b.register(64);
        src.write(0, b"ADT bytes");
        b.post_recv(
            WorkRequestId(9),
            Some(RecvBufferSlot {
                mr: landing.clone(),
                offset: 32,
                len: 32,
            }),
        );
        a.post_send(WorkRequestId(2), &src, 0, 9, true).unwrap();
        assert_eq!(&landing.read(32, 9), b"ADT bytes");
        let rx = b.recv_cq().poll(4);
        assert_eq!(rx[0].kind, CqeKind::Recv { len: 9 });
    }

    #[test]
    fn send_too_big_for_slot_rejected() {
        let (a, b, pd_a, pd_b) = pair();
        let src = pd_a.register(64);
        let landing = pd_b.register(64);
        b.post_recv(
            WorkRequestId(9),
            Some(RecvBufferSlot {
                mr: landing,
                offset: 0,
                len: 4,
            }),
        );
        let err = a
            .post_send(WorkRequestId(2), &src, 0, 32, true)
            .unwrap_err();
        assert_eq!(
            err,
            QpError::RecvBufferTooSmall {
                needed: 32,
                available: 4
            }
        );
    }

    #[test]
    fn in_order_delivery_of_immediates() {
        let (a, b, pd_a, pd_b) = pair();
        let src = pd_a.register(32);
        let dst = pd_b.register(1024);
        for i in 0..16u32 {
            b.post_recv(WorkRequestId(i as u64), None);
        }
        for i in 0..16u32 {
            a.post_write_imm(
                WorkRequestId(i as u64),
                &src,
                0,
                4,
                &dst,
                (i * 8) as usize,
                i,
                false,
            )
            .unwrap();
        }
        let rx = b.recv_cq().poll(32);
        let imms: Vec<u32> = rx
            .iter()
            .map(|c| match c.kind {
                CqeKind::RecvWriteImm { imm, .. } => imm,
                _ => panic!("wrong kind"),
            })
            .collect();
        assert_eq!(imms, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn pcie_accounting_per_direction() {
        let pd_a = ProtectionDomain::new();
        let pd_b = ProtectionDomain::new();
        let link = PcieLink::new();
        let (a, b) = connect_pair(&pd_a, &pd_b, 64, link.clone(), FaultInjector::new());
        let mr_a = pd_a.register(256);
        let mr_b = pd_b.register(256);
        b.post_recv(WorkRequestId(0), None);
        a.post_write_imm(WorkRequestId(0), &mr_a, 0, 100, &mr_b, 0, 0, false)
            .unwrap();
        a.post_recv(WorkRequestId(0), None);
        b.post_write_imm(WorkRequestId(0), &mr_b, 0, 40, &mr_a, 0, 0, false)
            .unwrap();
        let s = link.stats();
        assert_eq!(s.bytes_to_host, 100);
        assert_eq!(s.bytes_to_device, 40);
    }

    #[test]
    fn injected_fault_surfaces() {
        let pd_a = ProtectionDomain::new();
        let pd_b = ProtectionDomain::new();
        let faults = FaultInjector::new();
        let (a, b) = connect_pair(&pd_a, &pd_b, 64, PcieLink::new(), faults.clone());
        let src = pd_a.register(32);
        let dst = pd_b.register(32);
        b.post_recv(WorkRequestId(0), None);
        b.post_recv(WorkRequestId(1), None);
        faults.fail_nth(1, FaultKind::TransportRetryExceeded);
        a.post_write_imm(WorkRequestId(0), &src, 0, 4, &dst, 0, 0, false)
            .unwrap();
        let err = a
            .post_write_imm(WorkRequestId(1), &src, 0, 4, &dst, 0, 0, false)
            .unwrap_err();
        assert_eq!(err, QpError::Fault(FaultKind::TransportRetryExceeded));
    }

    #[test]
    fn delayed_completion_holds_cqe_until_next_post_in_order() {
        let pd_a = ProtectionDomain::new();
        let pd_b = ProtectionDomain::new();
        let faults = FaultInjector::new();
        let (a, b) = connect_pair(&pd_a, &pd_b, 64, PcieLink::new(), faults.clone());
        let src = pd_a.register(32);
        let dst = pd_b.register(64);
        b.post_recv(WorkRequestId(0), None);
        b.post_recv(WorkRequestId(1), None);
        faults.fail_nth(0, FaultKind::DelayedCompletion);
        a.post_write_imm(WorkRequestId(0), &src, 0, 4, &dst, 0, 10, false)
            .unwrap();
        // Data landed but the completion is held back.
        assert!(b.recv_cq().poll(4).is_empty());
        // The next post drains the held CQE first: order preserved.
        a.post_write_imm(WorkRequestId(1), &src, 0, 4, &dst, 8, 11, false)
            .unwrap();
        let rx = b.recv_cq().poll(4);
        let imms: Vec<u32> = rx
            .iter()
            .map(|c| match c.kind {
                CqeKind::RecvWriteImm { imm, .. } => imm,
                _ => panic!("wrong kind"),
            })
            .collect();
        assert_eq!(imms, vec![10, 11]);
    }

    #[test]
    fn bit_flip_is_silent_and_corrupts_exactly_one_bit() {
        let pd_a = ProtectionDomain::new();
        let pd_b = ProtectionDomain::new();
        let faults = FaultInjector::new();
        let (a, b) = connect_pair(&pd_a, &pd_b, 64, PcieLink::new(), faults.clone());
        let src = pd_a.register(64);
        let dst = pd_b.register(64);
        src.write(0, &[0u8; 32]);
        b.post_recv(WorkRequestId(0), None);
        faults.fail_nth(0, FaultKind::BitFlip);
        // The post succeeds: no error, completion + immediate delivered.
        a.post_write_imm(WorkRequestId(0), &src, 0, 32, &dst, 0, 5, false)
            .unwrap();
        let rx = b.recv_cq().poll(4);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].kind, CqeKind::RecvWriteImm { imm: 5, len: 32 });
        // Exactly one destination bit differs from the source.
        let delivered = dst.read(0, 32);
        let flipped: u32 = delivered.iter().map(|byt| byt.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must have flipped");
        assert_eq!(faults.fired_of(FaultKind::BitFlip), 1);
        // The connection remains healthy.
        b.post_recv(WorkRequestId(1), None);
        a.post_write_imm(WorkRequestId(1), &src, 0, 32, &dst, 32, 6, false)
            .unwrap();
        assert_eq!(dst.read(32, 32), vec![0u8; 32]);
    }

    #[test]
    fn bit_flip_on_two_sided_send_is_absorbed() {
        let pd_a = ProtectionDomain::new();
        let pd_b = ProtectionDomain::new();
        let faults = FaultInjector::new();
        let (a, b) = connect_pair(&pd_a, &pd_b, 64, PcieLink::new(), faults.clone());
        let src = pd_a.register(32);
        let landing = pd_b.register(32);
        src.write(0, b"control!");
        b.post_recv(
            WorkRequestId(0),
            Some(RecvBufferSlot {
                mr: landing.clone(),
                offset: 0,
                len: 32,
            }),
        );
        faults.fail_nth(0, FaultKind::BitFlip);
        // Control traffic ignores the flip (the ADT path has its own
        // digest verification); the send must not fail.
        a.post_send(WorkRequestId(0), &src, 0, 8, false).unwrap();
        assert_eq!(&landing.read(0, 8), b"control!");
    }

    #[test]
    fn dropped_ack_appears_successful_but_poisons_connection() {
        let pd_a = ProtectionDomain::new();
        let pd_b = ProtectionDomain::new();
        let faults = FaultInjector::new();
        let (a, b) = connect_pair(&pd_a, &pd_b, 64, PcieLink::new(), faults.clone());
        let src = pd_a.register(32);
        let dst = pd_b.register(32);
        b.post_recv(WorkRequestId(0), None);
        faults.fail_nth(0, FaultKind::DroppedAck);
        a.post_write_imm(WorkRequestId(0), &src, 0, 4, &dst, 0, 0, true)
            .unwrap();
        // Sender saw a completion but nothing was delivered…
        assert_eq!(a.send_cq().poll(4).len(), 1);
        assert!(b.recv_cq().poll(4).is_empty());
        assert_eq!(b.posted_recvs(), 1);
        // …and both directions are dead afterwards.
        let err = a
            .post_write_imm(WorkRequestId(1), &src, 0, 4, &dst, 0, 0, false)
            .unwrap_err();
        assert_eq!(err, QpError::Disconnected);
        a.post_recv(WorkRequestId(0), None);
        let err = b
            .post_write_imm(WorkRequestId(0), &dst, 0, 4, &src, 0, 0, false)
            .unwrap_err();
        assert_eq!(err, QpError::Disconnected);
    }

    #[test]
    fn connection_kill_fails_loudly_and_poisons() {
        let pd_a = ProtectionDomain::new();
        let pd_b = ProtectionDomain::new();
        let faults = FaultInjector::new();
        let (a, b) = connect_pair(&pd_a, &pd_b, 64, PcieLink::new(), faults.clone());
        let src = pd_a.register(32);
        let dst = pd_b.register(32);
        b.post_recv(WorkRequestId(0), None);
        faults.fail_nth(0, FaultKind::ConnectionKill);
        let err = a
            .post_write_imm(WorkRequestId(0), &src, 0, 4, &dst, 0, 0, false)
            .unwrap_err();
        assert_eq!(err, QpError::Fault(FaultKind::ConnectionKill));
        let err = a
            .post_write_imm(WorkRequestId(1), &src, 0, 4, &dst, 0, 0, false)
            .unwrap_err();
        assert_eq!(err, QpError::Disconnected);
    }

    #[test]
    fn disconnect_detected() {
        let (a, b, pd_a, pd_b) = pair();
        let src = pd_a.register(32);
        let dst = pd_b.register(32);
        drop(b);
        let err = a
            .post_write_imm(WorkRequestId(0), &src, 0, 4, &dst, 0, 0, false)
            .unwrap_err();
        assert_eq!(err, QpError::Disconnected);
    }

    #[test]
    fn cq_overflow_reported_not_silent() {
        let pd_a = ProtectionDomain::new();
        let pd_b = ProtectionDomain::new();
        // Tiny recv CQ: 2 entries.
        let (a, b) = crate::fabric::connect_pair_with_cq_depth(
            &pd_a,
            &pd_b,
            64,
            2,
            PcieLink::new(),
            FaultInjector::new(),
        );
        let src = pd_a.register(32);
        let dst = pd_b.register(64);
        for i in 0..8 {
            b.post_recv(WorkRequestId(i), None);
        }
        a.post_write_imm(WorkRequestId(0), &src, 0, 4, &dst, 0, 0, false)
            .unwrap();
        a.post_write_imm(WorkRequestId(1), &src, 0, 4, &dst, 8, 0, false)
            .unwrap();
        let err = a
            .post_write_imm(WorkRequestId(2), &src, 0, 4, &dst, 16, 0, false)
            .unwrap_err();
        assert_eq!(err, QpError::CqOverflow);
        assert!(b.recv_cq().has_overflowed());
    }
}
