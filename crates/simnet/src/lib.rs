//! An in-process model of the RDMA hardware the paper runs on.
//!
//! The reproduction has no BlueField-3 and no `libibverbs`; this crate
//! supplies the exact *semantics* the RPC-over-RDMA protocol depends on
//! (§II.A, §III):
//!
//! * [`MemoryRegion`] — registered ("pinned") memory with a stable base
//!   address, the prerequisite for the shared-address-space trick: remote
//!   pointers are crafted against the region's base and become valid after
//!   the DMA copy, exactly as on hardware.
//! * [`ProtectionDomain`] — groups MRs and QPs; cross-PD access is refused,
//!   as on real devices.
//! * [`QueuePair`] (reliable connection) — `post_recv`, two-sided `send`,
//!   and the workhorse **write-with-immediate**, which copies bytes into
//!   the remote MR *without remote CPU involvement* and consumes one
//!   posted receive on the responder, delivering the 4-byte immediate in
//!   the completion.
//! * [`CompletionQueue`] / completion channels — non-blocking `poll` plus
//!   blocking `wait` with timeout (the paper sleeps in `poll()` under low
//!   load rather than busy-polling, §III.C).
//! * [`PcieLink`] — per-direction byte accounting (Fig 8b's metric) with an
//!   optional bandwidth model for virtual-time experiments.
//! * [`SimTcpStream`]/[`SimTcpListener`] — reliable in-memory byte streams
//!   standing in for the xRPC client's TCP leg.
//! * [`FaultInjector`] — programmable failures (receiver-not-ready, CQ
//!   overflow) for robustness tests; the paper notes overflowing the
//!   receive side "causes data retransmission and massively reduces
//!   performance", so the protocol must provably avoid it.
//!
//! Unsafe code is confined to [`region`]: the DMA engine copies through raw
//! pointers while both endpoints hold handles, mirroring real RDMA, with
//! happens-before provided by completion delivery — the same contract
//! `libibverbs` gives applications.

#![warn(missing_docs)]

pub mod cq;
pub mod fabric;
pub mod fault;
pub mod pcie;
pub mod qp;
pub mod region;
pub mod tcp;

pub use cq::{CompletionQueue, Cqe, CqeKind};
pub use fabric::{connect_pair, Fabric};
pub use fault::{FaultInjector, FaultKind};
pub use pcie::{PcieLink, PcieStats};
pub use qp::{QpError, QueuePair, RecvBufferSlot, WorkRequestId};
pub use region::{MemoryRegion, ProtectionDomain};
pub use tcp::{SimTcpListener, SimTcpStream, TcpFabric};
