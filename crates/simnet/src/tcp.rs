//! Simulated TCP: reliable in-memory byte streams with a listener registry.
//!
//! The xRPC clients in Figure 1 reach the DPU over ordinary TCP/IP. The
//! reproduction keeps that leg in-process: [`SimTcpStream`] is a pair of
//! unidirectional byte pipes with blocking reads, and [`TcpFabric`] is the
//! address registry standing in for the IP stack ("the DPU is a SmartNIC
//! but has a distinct IP address to the host", §III.A).

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One direction of a stream.
#[derive(Debug)]
struct Pipe {
    tx: Sender<Vec<u8>>,
}

/// A connected, reliable, ordered byte stream.
#[derive(Debug)]
pub struct SimTcpStream {
    tx: Pipe,
    rx: Receiver<Vec<u8>>,
    /// Partially consumed incoming chunk.
    pending: Vec<u8>,
    pending_pos: usize,
    bytes_tx: Arc<AtomicU64>,
    bytes_rx: Arc<AtomicU64>,
    read_timeout: Option<Duration>,
}

impl SimTcpStream {
    /// Creates a connected pair of streams.
    pub fn pair() -> (SimTcpStream, SimTcpStream) {
        let (atx, brx) = unbounded();
        let (btx, arx) = unbounded();
        (
            SimTcpStream {
                tx: Pipe { tx: atx },
                rx: arx,
                pending: Vec::new(),
                pending_pos: 0,
                bytes_tx: Arc::new(AtomicU64::new(0)),
                bytes_rx: Arc::new(AtomicU64::new(0)),
                read_timeout: None,
            },
            SimTcpStream {
                tx: Pipe { tx: btx },
                rx: brx,
                pending: Vec::new(),
                pending_pos: 0,
                bytes_tx: Arc::new(AtomicU64::new(0)),
                bytes_rx: Arc::new(AtomicU64::new(0)),
                read_timeout: None,
            },
        )
    }

    /// Sets (or clears) the blocking-read timeout.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) {
        self.read_timeout = t;
    }

    /// Bytes written into this stream so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_tx.load(Ordering::Relaxed)
    }

    /// Reads exactly `buf.len()` bytes (blocking), like
    /// `Read::read_exact` but honoring the stream timeout per chunk.
    pub fn read_exact_timeout(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.read(&mut buf[filled..])?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"));
            }
            filled += n;
        }
        Ok(())
    }
}

impl Write for SimTcpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.tx
            .tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))?;
        self.bytes_tx.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for SimTcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pending_pos >= self.pending.len() {
            let chunk = match self.read_timeout {
                Some(t) => match self.rx.recv_timeout(t) {
                    Ok(c) => c,
                    Err(RecvTimeoutError::Timeout) => {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "read timeout"))
                    }
                    Err(RecvTimeoutError::Disconnected) => return Ok(0),
                },
                None => match self.rx.recv() {
                    Ok(c) => c,
                    Err(_) => return Ok(0), // EOF
                },
            };
            self.pending = chunk;
            self.pending_pos = 0;
        }
        let n = buf.len().min(self.pending.len() - self.pending_pos);
        buf[..n].copy_from_slice(&self.pending[self.pending_pos..self.pending_pos + n]);
        self.pending_pos += n;
        self.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

type PendingConn = Sender<SimTcpStream>;

/// The address registry: binds listeners to string addresses and brokers
/// connections.
#[derive(Clone, Default)]
pub struct TcpFabric {
    listeners: Arc<Mutex<HashMap<String, PendingConn>>>,
}

/// An accepting endpoint bound to an address.
pub struct SimTcpListener {
    incoming: Receiver<SimTcpStream>,
    addr: String,
    fabric: TcpFabric,
}

impl TcpFabric {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a listener at `addr`.
    ///
    /// # Panics
    /// Panics if the address is already bound (address-in-use is a
    /// programming error in the in-process world).
    pub fn bind(&self, addr: &str) -> SimTcpListener {
        let (tx, rx) = unbounded();
        let prev = self.listeners.lock().insert(addr.to_string(), tx);
        assert!(prev.is_none(), "address already bound: {addr}");
        SimTcpListener {
            incoming: rx,
            addr: addr.to_string(),
            fabric: self.clone(),
        }
    }

    /// Connects to `addr`, returning the client stream.
    pub fn connect(&self, addr: &str) -> io::Result<SimTcpStream> {
        let listeners = self.listeners.lock();
        let Some(l) = listeners.get(addr) else {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("no listener at {addr}"),
            ));
        };
        let (client, server) = SimTcpStream::pair();
        l.send(server)
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "listener dropped"))?;
        Ok(client)
    }
}

impl SimTcpListener {
    /// Blocks until a client connects.
    pub fn accept(&self) -> io::Result<SimTcpStream> {
        self.incoming
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "fabric closed"))
    }

    /// Accepts with a timeout.
    pub fn accept_timeout(&self, t: Duration) -> io::Result<SimTcpStream> {
        self.incoming.recv_timeout(t).map_err(|e| match e {
            RecvTimeoutError::Timeout => io::Error::new(io::ErrorKind::TimedOut, "accept timeout"),
            RecvTimeoutError::Disconnected => {
                io::Error::new(io::ErrorKind::BrokenPipe, "fabric closed")
            }
        })
    }

    /// The bound address.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Drop for SimTcpListener {
    fn drop(&mut self) {
        self.fabric.listeners.lock().remove(&self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let (mut a, mut b) = SimTcpStream::pair();
        a.write_all(b"hello").unwrap();
        a.write_all(b" world").unwrap();
        let mut buf = [0u8; 11];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        assert_eq!(a.bytes_sent(), 11);
    }

    #[test]
    fn partial_reads_across_chunks() {
        let (mut a, mut b) = SimTcpStream::pair();
        a.write_all(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut buf = [0u8; 3];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        let mut rest = [0u8; 5];
        b.read_exact(&mut rest).unwrap();
        assert_eq!(rest, [4, 5, 6, 7, 8]);
    }

    #[test]
    fn eof_on_peer_drop() {
        let (a, mut b) = SimTcpStream::pair();
        drop(a);
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn read_timeout_fires() {
        let (_a, mut b) = SimTcpStream::pair();
        b.set_read_timeout(Some(Duration::from_millis(20)));
        let mut buf = [0u8; 1];
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn fabric_bind_connect_accept() {
        let fabric = TcpFabric::new();
        let listener = fabric.bind("dpu:50051");
        let mut client = fabric.connect("dpu:50051").unwrap();
        client.write_all(b"rpc!").unwrap();
        let mut server = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"rpc!");
        // Bidirectional.
        server.write_all(b"ok").unwrap();
        let mut r = [0u8; 2];
        client.read_exact(&mut r).unwrap();
        assert_eq!(&r, b"ok");
    }

    #[test]
    fn connect_to_unbound_refused() {
        let fabric = TcpFabric::new();
        let err = fabric.connect("nobody:1").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn rebind_after_drop() {
        let fabric = TcpFabric::new();
        let l = fabric.bind("a:1");
        drop(l);
        let _l2 = fabric.bind("a:1"); // must not panic
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let fabric = TcpFabric::new();
        let _a = fabric.bind("a:1");
        let _b = fabric.bind("a:1");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary write chunkings reassemble into the same byte
            /// stream under arbitrary read chunkings.
            #[test]
            fn chunked_writes_reassemble(
                data in proptest::collection::vec(any::<u8>(), 1..2000),
                write_cuts in proptest::collection::vec(1usize..100, 0..20),
                read_size in 1usize..64,
            ) {
                let (mut a, mut b) = SimTcpStream::pair();
                let mut pos = 0;
                let mut cuts = write_cuts.into_iter();
                while pos < data.len() {
                    let n = cuts.next().unwrap_or(data.len()).min(data.len() - pos);
                    a.write_all(&data[pos..pos + n]).unwrap();
                    pos += n;
                }
                drop(a);
                let mut out = Vec::new();
                let mut buf = vec![0u8; read_size];
                loop {
                    let n = b.read(&mut buf).unwrap();
                    if n == 0 {
                        break;
                    }
                    out.extend_from_slice(&buf[..n]);
                }
                prop_assert_eq!(out, data);
            }
        }
    }

    #[test]
    fn concurrent_client_server() {
        let fabric = TcpFabric::new();
        let listener = fabric.bind("svc:9");
        let h = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
        });
        let mut c = fabric.connect("svc:9").unwrap();
        c.write_all(b"echo!").unwrap();
        let mut buf = [0u8; 5];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"echo!");
        h.join().unwrap();
    }
}
