//! Connection establishment — the `rdma_cm` analogue.

use crate::cq::CompletionQueue;
use crate::fault::FaultInjector;
use crate::pcie::{Direction, PcieLink};
use crate::qp::{next_qpn, QueuePair, Responder};
use crate::region::ProtectionDomain;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::AtomicBool;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Creates a connected pair of RC queue pairs with private CQs of depth
/// `cq_depth` on each side. Endpoint `a` plays the DPU (its traffic is
/// accounted `ToHost`); endpoint `b` plays the host.
pub fn connect_pair(
    pd_a: &ProtectionDomain,
    pd_b: &ProtectionDomain,
    cq_depth: usize,
    link: PcieLink,
    faults: FaultInjector,
) -> (QueuePair, QueuePair) {
    connect_pair_with_cq_depth(pd_a, pd_b, cq_depth, cq_depth, link, faults)
}

/// [`connect_pair`] with distinct send/recv CQ depths (`recv_cq_depth` is
/// the overflow-sensitive one the credit system protects).
pub fn connect_pair_with_cq_depth(
    pd_a: &ProtectionDomain,
    pd_b: &ProtectionDomain,
    send_cq_depth: usize,
    recv_cq_depth: usize,
    link: PcieLink,
    faults: FaultInjector,
) -> (QueuePair, QueuePair) {
    connect_with_cqs(
        pd_a,
        pd_b,
        CompletionQueue::new(send_cq_depth),
        CompletionQueue::new(recv_cq_depth),
        CompletionQueue::new(send_cq_depth),
        CompletionQueue::new(recv_cq_depth),
        link,
        faults,
    )
}

/// Full-control variant: caller supplies all four CQs, allowing the
/// server-side pattern of one CQ shared across many connections (§III.C:
/// "a single poller can share multiple connections on the server side using
/// a single received queue and a single completion queue shared between
/// connections").
#[allow(clippy::too_many_arguments)]
pub fn connect_with_cqs(
    pd_a: &ProtectionDomain,
    pd_b: &ProtectionDomain,
    a_send_cq: CompletionQueue,
    a_recv_cq: CompletionQueue,
    b_send_cq: CompletionQueue,
    b_recv_cq: CompletionQueue,
    link: PcieLink,
    faults: FaultInjector,
) -> (QueuePair, QueuePair) {
    let qpn_a = next_qpn();
    let qpn_b = next_qpn();
    let resp_a = Arc::new(Responder {
        recv_queue: Mutex::new(VecDeque::new()),
        recv_cq: a_recv_cq,
        qp_num: qpn_a,
        alive: AtomicBool::new(true),
        order: Mutex::new(()),
        delayed: Mutex::new(VecDeque::new()),
    });
    let resp_b = Arc::new(Responder {
        recv_queue: Mutex::new(VecDeque::new()),
        recv_cq: b_recv_cq,
        qp_num: qpn_b,
        alive: AtomicBool::new(true),
        order: Mutex::new(()),
        delayed: Mutex::new(VecDeque::new()),
    });
    let a = QueuePair {
        qp_num: qpn_a,
        pd: pd_a.id(),
        send_cq: a_send_cq,
        local: resp_a.clone(),
        peer: resp_b.clone(),
        link: link.clone(),
        dir_to_peer: Direction::ToHost,
        faults: faults.clone(),
        rnr_count: AtomicU64::new(0),
        last_dma_ns: AtomicU64::new(0),
    };
    let b = QueuePair {
        qp_num: qpn_b,
        pd: pd_b.id(),
        send_cq: b_send_cq,
        local: resp_b,
        peer: resp_a,
        link,
        dir_to_peer: Direction::ToDevice,
        faults,
        rnr_count: AtomicU64::new(0),
        last_dma_ns: AtomicU64::new(0),
    };
    (a, b)
}

/// A device-level context bundling the shared PCIe link and fault plane —
/// one per simulated host↔DPU pairing.
#[derive(Clone, Default)]
pub struct Fabric {
    link: PcieLink,
    faults: FaultInjector,
}

impl Fabric {
    /// Creates a fabric with fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared PCIe link.
    pub fn link(&self) -> &PcieLink {
        &self.link
    }

    /// The shared fault injector.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Connects a DPU-side PD to a host-side PD with private CQs.
    pub fn connect(
        &self,
        pd_dpu: &ProtectionDomain,
        pd_host: &ProtectionDomain,
        cq_depth: usize,
    ) -> (QueuePair, QueuePair) {
        connect_pair(
            pd_dpu,
            pd_host,
            cq_depth,
            self.link.clone(),
            self.faults.clone(),
        )
    }

    /// Connects with caller-supplied CQs (for CQ sharing on the host side).
    #[allow(clippy::too_many_arguments)]
    pub fn connect_shared(
        &self,
        pd_dpu: &ProtectionDomain,
        pd_host: &ProtectionDomain,
        dpu_send_cq: CompletionQueue,
        dpu_recv_cq: CompletionQueue,
        host_send_cq: CompletionQueue,
        host_recv_cq: CompletionQueue,
    ) -> (QueuePair, QueuePair) {
        connect_with_cqs(
            pd_dpu,
            pd_host,
            dpu_send_cq,
            dpu_recv_cq,
            host_send_cq,
            host_recv_cq,
            self.link.clone(),
            self.faults.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqeKind;
    use crate::qp::WorkRequestId;

    #[test]
    fn fabric_connect_and_traffic() {
        let fabric = Fabric::new();
        let pd_dpu = ProtectionDomain::new();
        let pd_host = ProtectionDomain::new();
        let (dpu, host) = fabric.connect(&pd_dpu, &pd_host, 32);
        let sbuf = pd_dpu.register(64);
        let rbuf = pd_host.register(64);
        sbuf.write(0, &[5; 16]);
        host.post_recv(WorkRequestId(0), None);
        dpu.post_write_imm(WorkRequestId(1), &sbuf, 0, 16, &rbuf, 0, 3, false)
            .unwrap();
        assert_eq!(rbuf.read(0, 16), vec![5; 16]);
        assert_eq!(fabric.link().stats().bytes_to_host, 16);
    }

    #[test]
    fn shared_host_cq_multiplexes_connections() {
        let fabric = Fabric::new();
        let pd_host = ProtectionDomain::new();
        let shared_recv = CompletionQueue::new(64);
        let mut dpu_sides = Vec::new();
        let mut host_sides = Vec::new();
        for _ in 0..3 {
            let pd_dpu = ProtectionDomain::new();
            let (d, h) = fabric.connect_shared(
                &pd_dpu,
                &pd_host,
                CompletionQueue::new(16),
                CompletionQueue::new(16),
                CompletionQueue::new(16),
                shared_recv.clone(),
            );
            let sbuf = pd_dpu.register(32);
            dpu_sides.push((d, sbuf, pd_dpu));
            host_sides.push(h);
        }
        let rbuf = pd_host.register(256);
        for (i, h) in host_sides.iter().enumerate() {
            h.post_recv(WorkRequestId(i as u64), None);
        }
        for (i, (d, sbuf, _)) in dpu_sides.iter().enumerate() {
            d.post_write_imm(WorkRequestId(0), sbuf, 0, 8, &rbuf, i * 8, i as u32, false)
                .unwrap();
        }
        // One shared CQ sees completions from all three QPs, and qp_num
        // disambiguates them.
        let cqes = shared_recv.poll(16);
        assert_eq!(cqes.len(), 3);
        let mut qpns: Vec<u32> = cqes.iter().map(|c| c.qp_num).collect();
        qpns.dedup();
        assert_eq!(qpns.len(), 3);
        for c in &cqes {
            assert!(matches!(c.kind, CqeKind::RecvWriteImm { .. }));
        }
    }
}
