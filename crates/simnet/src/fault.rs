//! Deterministic fault injection.
//!
//! Robustness tests need to exercise the protocol's failure paths —
//! receiver-not-ready, completion-queue pressure, link hiccups — without
//! nondeterminism. Faults are scheduled by *operation index*: "fail the
//! Nth post from now", so tests are exactly reproducible. For soak-style
//! coverage, [`FaultInjector::schedule_probabilistic`] draws a schedule
//! from a seeded PRNG — random-looking, but replayable from the seed.

use parking_lot::Mutex;
use pbo_metrics::{Counter, Registry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Kinds of injectable faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The responder had no posted receive (RNR NAK on hardware).
    ReceiverNotReady,
    /// The DMA engine reports a transport retry exhaustion.
    TransportRetryExceeded,
    /// The immediate data was delivered but the payload write failed
    /// loudly — the initiator sees the error, so recovery is a transport
    /// concern (reconnect + replay), not a data-integrity one. Contrast
    /// [`FaultKind::BitFlip`], which corrupts *silently*.
    PayloadCorrupt,
    /// One payload bit is flipped after the DMA copy, and the operation
    /// reports success: neither endpoint sees a transport error, the
    /// completion (and its immediate) is delivered normally, and only an
    /// end-to-end check over the delivered bytes — the block CRC32C — can
    /// detect it. Models silent PCIe/DMA/memory corruption.
    BitFlip,
    /// The data lands but its completion is held back until the next
    /// operation on the same responder drains it (order preserved). If no
    /// later operation arrives the completion is lost — surfacing only as
    /// a stall the upper layers must detect.
    DelayedCompletion,
    /// The operation appears to succeed at the initiator but nothing is
    /// delivered, and the connection is poisoned: both endpoints see
    /// `Disconnected` on their next post. Models a lost hardware ack that
    /// tears the RC state machine.
    DroppedAck,
    /// The connection is killed outright: the post fails loudly and both
    /// endpoints are poisoned.
    ConnectionKill,
}

impl FaultKind {
    /// Every injectable kind, for exhaustive schedules and dashboards.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::ReceiverNotReady,
        FaultKind::TransportRetryExceeded,
        FaultKind::PayloadCorrupt,
        FaultKind::BitFlip,
        FaultKind::DelayedCompletion,
        FaultKind::DroppedAck,
        FaultKind::ConnectionKill,
    ];

    /// Stable lower-case name, used as the metrics `kind` label.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::ReceiverNotReady => "receiver_not_ready",
            FaultKind::TransportRetryExceeded => "transport_retry_exceeded",
            FaultKind::PayloadCorrupt => "payload_corrupt",
            FaultKind::BitFlip => "bit_flip",
            FaultKind::DelayedCompletion => "delayed_completion",
            FaultKind::DroppedAck => "dropped_ack",
            FaultKind::ConnectionKill => "connection_kill",
        }
    }

    fn index(&self) -> usize {
        Self::ALL.iter().position(|k| k == self).unwrap()
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Registry-backed per-kind fired counters (bound at most once per
/// injector via [`FaultInjector::bind_metrics`]).
struct FaultMetrics {
    fired: [Counter; FaultKind::ALL.len()],
}

#[derive(Default)]
struct Inner {
    /// Scheduled faults keyed by the send-operation index they hit.
    scheduled: Mutex<BTreeMap<u64, FaultKind>>,
    /// Monotonic count of send operations checked so far.
    op_counter: AtomicU64,
    /// Faults actually fired.
    fired: AtomicU64,
    /// Faults fired, broken down by kind (indexed by `FaultKind::ALL`).
    fired_by_kind: [AtomicU64; FaultKind::ALL.len()],
    /// Optional registry export.
    metrics: OnceLock<FaultMetrics>,
}

/// Shared, clonable fault-injection control plane.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Inner>,
}

impl FaultInjector {
    /// Creates an injector with no scheduled faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire on the `nth` subsequent checked operation
    /// (0 = the very next one).
    pub fn fail_nth(&self, nth: u64, kind: FaultKind) {
        let base = self.inner.op_counter.load(Ordering::Relaxed);
        self.inner.scheduled.lock().insert(base + nth, kind);
    }

    /// Draws a reproducible schedule over the next `horizon` operations:
    /// each slot fires with probability `prob_permille`/1000, choosing
    /// uniformly among `kinds`. Slots already scheduled keep their earlier
    /// fault. Returns the number of faults scheduled.
    ///
    /// The same `(seed, horizon, prob_permille, kinds)` from the same
    /// operation counter always yields the same schedule.
    pub fn schedule_probabilistic(
        &self,
        seed: u64,
        horizon: u64,
        prob_permille: u32,
        kinds: &[FaultKind],
    ) -> u64 {
        if kinds.is_empty() || prob_permille == 0 {
            return 0;
        }
        let base = self.inner.op_counter.load(Ordering::Relaxed);
        let mut rng = SplitMix64::new(seed);
        let mut scheduled = self.inner.scheduled.lock();
        let mut count = 0;
        for nth in 0..horizon {
            if rng.next() % 1000 < prob_permille as u64 {
                let kind = kinds[(rng.next() % kinds.len() as u64) as usize];
                scheduled.entry(base + nth).or_insert(kind);
                count += 1;
            }
        }
        count
    }

    /// Called by the device on each send-side operation; returns the fault
    /// to apply, if any.
    pub(crate) fn check(&self) -> Option<FaultKind> {
        let idx = self.inner.op_counter.fetch_add(1, Ordering::Relaxed);
        let hit = self.inner.scheduled.lock().remove(&idx);
        if let Some(kind) = hit {
            self.inner.fired.fetch_add(1, Ordering::Relaxed);
            self.inner.fired_by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.inner.metrics.get() {
                m.fired[kind.index()].inc();
            }
        }
        hit
    }

    /// Number of faults that have fired.
    pub fn fired(&self) -> u64 {
        self.inner.fired.load(Ordering::Relaxed)
    }

    /// Number of faults of `kind` that have fired.
    pub fn fired_of(&self, kind: FaultKind) -> u64 {
        self.inner.fired_by_kind[kind.index()].load(Ordering::Relaxed)
    }

    /// Number of faults still scheduled.
    pub fn pending(&self) -> usize {
        self.inner.scheduled.lock().len()
    }

    /// Exports this injector's fired counts into `registry` as
    /// `fault_injector_fired_total` series labeled `{fabric, kind}`, one
    /// per [`FaultKind`]. Binds once; later calls are ignored. Counters
    /// start from the current per-kind counts so late binding stays
    /// consistent.
    pub fn bind_metrics(&self, registry: &Registry, fabric_label: &str) {
        let fired = FaultKind::ALL.map(|kind| {
            let c = registry.counter(
                "fault_injector_fired_total",
                "Injected faults fired, by kind",
                &[("fabric", fabric_label), ("kind", kind.name())],
            );
            let already = self.fired_of(kind);
            if already > c.get() {
                c.inc_by(already - c.get());
            }
            c
        });
        let _ = self.inner.metrics.set(FaultMetrics { fired });
    }
}

/// SplitMix64 — tiny, deterministic, and good enough for fault schedules.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_exact_index() {
        let f = FaultInjector::new();
        f.fail_nth(2, FaultKind::ReceiverNotReady);
        assert_eq!(f.check(), None);
        assert_eq!(f.check(), None);
        assert_eq!(f.check(), Some(FaultKind::ReceiverNotReady));
        assert_eq!(f.check(), None);
        assert_eq!(f.fired(), 1);
        assert_eq!(f.fired_of(FaultKind::ReceiverNotReady), 1);
        assert_eq!(f.fired_of(FaultKind::ConnectionKill), 0);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn relative_to_current_counter() {
        let f = FaultInjector::new();
        f.check();
        f.check();
        f.fail_nth(0, FaultKind::PayloadCorrupt);
        assert_eq!(f.check(), Some(FaultKind::PayloadCorrupt));
    }

    #[test]
    fn multiple_faults_independent() {
        let f = FaultInjector::new();
        f.fail_nth(0, FaultKind::ReceiverNotReady);
        f.fail_nth(1, FaultKind::TransportRetryExceeded);
        assert_eq!(f.check(), Some(FaultKind::ReceiverNotReady));
        assert_eq!(f.check(), Some(FaultKind::TransportRetryExceeded));
        assert_eq!(f.fired(), 2);
    }

    #[test]
    fn display_names_are_stable_and_distinct() {
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(format!("{}", FaultKind::DroppedAck), "dropped_ack");
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len());
    }

    #[test]
    fn probabilistic_schedule_is_reproducible() {
        let a = FaultInjector::new();
        let b = FaultInjector::new();
        let na = a.schedule_probabilistic(42, 1000, 50, &FaultKind::ALL);
        let nb = b.schedule_probabilistic(42, 1000, 50, &FaultKind::ALL);
        assert_eq!(na, nb);
        assert!(na > 0, "expected some faults at 5% over 1000 ops");
        for _ in 0..1000 {
            assert_eq!(a.check(), b.check());
        }
        assert_eq!(a.fired(), na);
    }

    #[test]
    fn probabilistic_schedule_keeps_existing_entries() {
        let f = FaultInjector::new();
        f.fail_nth(0, FaultKind::ConnectionKill);
        f.schedule_probabilistic(7, 1, 1000, &[FaultKind::ReceiverNotReady]);
        assert_eq!(f.check(), Some(FaultKind::ConnectionKill));
    }

    #[test]
    fn bind_metrics_exports_per_kind_counts() {
        let f = FaultInjector::new();
        f.fail_nth(0, FaultKind::DroppedAck);
        f.check(); // fires before binding
        let reg = Registry::new();
        f.bind_metrics(&reg, "soak");
        f.fail_nth(0, FaultKind::DroppedAck);
        f.fail_nth(1, FaultKind::ConnectionKill);
        f.check();
        f.check();
        fn labels(kind: &'static str) -> [(&'static str, &'static str); 2] {
            [("fabric", "soak"), ("kind", kind)]
        }
        assert_eq!(
            reg.counter_value("fault_injector_fired_total", &labels("dropped_ack")),
            Some(2)
        );
        assert_eq!(
            reg.counter_value("fault_injector_fired_total", &labels("connection_kill")),
            Some(1)
        );
    }
}
