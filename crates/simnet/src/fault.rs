//! Deterministic fault injection.
//!
//! Robustness tests need to exercise the protocol's failure paths —
//! receiver-not-ready, completion-queue pressure, link hiccups — without
//! nondeterminism. Faults are scheduled by *operation index*: "fail the
//! Nth post from now", so tests are exactly reproducible.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Kinds of injectable faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The responder had no posted receive (RNR NAK on hardware).
    ReceiverNotReady,
    /// The DMA engine reports a transport retry exhaustion.
    TransportRetryExceeded,
    /// The immediate data was delivered but the payload write failed
    /// (catastrophic; used to verify the protocol fails loudly).
    PayloadCorrupt,
}

#[derive(Default)]
struct Inner {
    /// Scheduled faults keyed by the send-operation index they hit.
    scheduled: Mutex<BTreeMap<u64, FaultKind>>,
    /// Monotric count of send operations checked so far.
    op_counter: AtomicU64,
    /// Faults actually fired.
    fired: AtomicU64,
}

/// Shared, clonable fault-injection control plane.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Inner>,
}

impl FaultInjector {
    /// Creates an injector with no scheduled faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire on the `nth` subsequent checked operation
    /// (0 = the very next one).
    pub fn fail_nth(&self, nth: u64, kind: FaultKind) {
        let base = self.inner.op_counter.load(Ordering::Relaxed);
        self.inner.scheduled.lock().insert(base + nth, kind);
    }

    /// Called by the device on each send-side operation; returns the fault
    /// to apply, if any.
    pub(crate) fn check(&self) -> Option<FaultKind> {
        let idx = self.inner.op_counter.fetch_add(1, Ordering::Relaxed);
        let hit = self.inner.scheduled.lock().remove(&idx);
        if hit.is_some() {
            self.inner.fired.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Number of faults that have fired.
    pub fn fired(&self) -> u64 {
        self.inner.fired.load(Ordering::Relaxed)
    }

    /// Number of faults still scheduled.
    pub fn pending(&self) -> usize {
        self.inner.scheduled.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_exact_index() {
        let f = FaultInjector::new();
        f.fail_nth(2, FaultKind::ReceiverNotReady);
        assert_eq!(f.check(), None);
        assert_eq!(f.check(), None);
        assert_eq!(f.check(), Some(FaultKind::ReceiverNotReady));
        assert_eq!(f.check(), None);
        assert_eq!(f.fired(), 1);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn relative_to_current_counter() {
        let f = FaultInjector::new();
        f.check();
        f.check();
        f.fail_nth(0, FaultKind::PayloadCorrupt);
        assert_eq!(f.check(), Some(FaultKind::PayloadCorrupt));
    }

    #[test]
    fn multiple_faults_independent() {
        let f = FaultInjector::new();
        f.fail_nth(0, FaultKind::ReceiverNotReady);
        f.fail_nth(1, FaultKind::TransportRetryExceeded);
        assert_eq!(f.check(), Some(FaultKind::ReceiverNotReady));
        assert_eq!(f.check(), Some(FaultKind::TransportRetryExceeded));
        assert_eq!(f.fired(), 2);
    }
}
