//! Registered (pinned) memory regions and protection domains.
//!
//! This is the only module in the networking substrate with `unsafe` code.
//! A [`MemoryRegion`] is a fixed, never-reallocated byte buffer that both
//! the owning "CPU" and the remote "DMA engine" access — exactly the
//! aliasing situation real RDMA creates. Synchronization is by protocol:
//! a range is written by exactly one side at a time, and the reader learns
//! of new data only through a completion-queue pop, which provides the
//! happens-before edge (the CQ is a mutex-protected queue).

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

static NEXT_PD_ID: AtomicU32 = AtomicU32::new(1);
static NEXT_KEY: AtomicU32 = AtomicU32::new(0x1000);

/// Groups memory regions and queue pairs that may work together (§II.A:
/// "All RDMA resources are grouped in protection domains").
#[derive(Clone, Debug)]
pub struct ProtectionDomain {
    id: u32,
}

impl ProtectionDomain {
    /// Allocates a new protection domain.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            id: NEXT_PD_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The domain's identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Registers a zeroed memory region of `len` bytes in this domain.
    ///
    /// The backing store is allocated as `u64` words so the region's base
    /// address is 8-aligned — pinned RDMA buffers are page-aligned on real
    /// hardware, and the shared-address-space pointer arithmetic (§III.B)
    /// relies on aligned bases.
    pub fn register(&self, len: usize) -> MemoryRegion {
        MemoryRegion {
            inner: Arc::new(MrInner {
                buf: UnsafeCell::new(vec![0u64; len.div_ceil(8)].into_boxed_slice()),
                len,
                pd: self.id,
                lkey: NEXT_KEY.fetch_add(1, Ordering::Relaxed),
                write_guard: Mutex::new(()),
            }),
        }
    }
}

struct MrInner {
    /// Word-typed storage for 8-aligned base; accessed as bytes.
    buf: UnsafeCell<Box<[u64]>>,
    len: usize,
    pd: u32,
    lkey: u32,
    /// Serializes whole-region administrative writes (e.g. `fill`); the
    /// datapath's disjoint-range contract does not take this lock.
    write_guard: Mutex<()>,
}

// SAFETY: concurrent access is governed by the RDMA protocol contract
// documented at module level — writers own disjoint ranges and readers
// synchronize through completion queues.
unsafe impl Send for MrInner {}
unsafe impl Sync for MrInner {}

/// A registered memory region. Cloning yields another handle to the same
/// bytes (like sharing an `lkey`).
#[derive(Clone)]
pub struct MemoryRegion {
    inner: Arc<MrInner>,
}

impl std::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("len", &self.inner.len)
            .field("pd", &self.inner.pd)
            .field("lkey", &self.inner.lkey)
            .finish()
    }
}

impl MemoryRegion {
    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// The owning protection domain's id.
    pub fn pd_id(&self) -> u32 {
        self.inner.pd
    }

    /// The local key (diagnostic identity).
    pub fn lkey(&self) -> u32 {
        self.inner.lkey
    }

    /// The *virtual address* of byte 0 — what the host exchanges with the
    /// DPU at setup so the DPU can craft shared-address-space pointers.
    pub fn base_addr(&self) -> usize {
        unsafe { (*self.inner.buf.get()).as_ptr() as usize }
    }

    fn check(&self, offset: usize, len: usize) {
        assert!(
            offset
                .checked_add(len)
                .is_some_and(|end| end <= self.inner.len),
            "MR access out of bounds: [{offset}, {offset}+{len}) in region of {}",
            self.inner.len
        );
    }

    /// Copies `data` into the region at `offset`.
    ///
    /// Contract: the caller owns `[offset, offset+len)` for writing (no
    /// concurrent reader or writer of that range).
    pub fn write(&self, offset: usize, data: &[u8]) {
        self.check(offset, data.len());
        // SAFETY: bounds checked; range ownership per module contract.
        unsafe {
            let base = (*self.inner.buf.get()).as_mut_ptr() as *mut u8;
            std::ptr::copy_nonoverlapping(data.as_ptr(), base.add(offset), data.len());
        }
    }

    /// Copies `len` bytes at `offset` into a fresh vector.
    pub fn read(&self, offset: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_into(offset, &mut out);
        out
    }

    /// Copies bytes at `offset` into `out`.
    ///
    /// Contract: the range was published to this reader via a completion.
    pub fn read_into(&self, offset: usize, out: &mut [u8]) {
        self.check(offset, out.len());
        // SAFETY: bounds checked; range ownership per module contract.
        unsafe {
            let base = (*self.inner.buf.get()).as_ptr() as *const u8;
            std::ptr::copy_nonoverlapping(base.add(offset), out.as_mut_ptr(), out.len());
        }
    }

    /// Zero-copy view of a received range. The returned slice aliases the
    /// region; the caller must not write the range while holding it.
    ///
    /// # Safety
    /// The caller must guarantee the range is quiescent (published by a
    /// completion and not yet recycled) for the borrow's duration — the
    /// same guarantee an RDMA application relies on when parsing a receive
    /// buffer in place.
    pub unsafe fn slice(&self, offset: usize, len: usize) -> &[u8] {
        self.check(offset, len);
        std::slice::from_raw_parts(
            ((*self.inner.buf.get()).as_ptr() as *const u8).add(offset),
            len,
        )
    }

    /// Zero-copy mutable view for in-place construction (e.g. building a
    /// block in a send buffer before posting it).
    ///
    /// # Safety
    /// The caller must own the range exclusively for the borrow's duration.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [u8] {
        self.check(offset, len);
        std::slice::from_raw_parts_mut(
            ((*self.inner.buf.get()).as_mut_ptr() as *mut u8).add(offset),
            len,
        )
    }

    /// Fills the whole region with `byte` (test/setup helper; takes the
    /// administrative write lock).
    pub fn fill(&self, byte: u8) {
        let _g = self.inner.write_guard.lock();
        // SAFETY: administrative lock held; not called concurrently with
        // datapath traffic by contract.
        unsafe {
            let words = &mut *self.inner.buf.get();
            let b = byte as u64;
            let word = b | b << 8 | b << 16 | b << 24 | b << 32 | b << 40 | b << 48 | b << 56;
            words.fill(word);
        }
    }

    /// DMA copy between regions (the device's engine). Copies
    /// `len` bytes from `src[src_off]` to `dst[dst_off]`.
    pub(crate) fn dma_copy(
        src: &MemoryRegion,
        src_off: usize,
        dst: &MemoryRegion,
        dst_off: usize,
        len: usize,
    ) {
        src.check(src_off, len);
        dst.check(dst_off, len);
        // SAFETY: bounds checked; the protocol guarantees the source range
        // is stable and the destination range is owned by this transfer.
        unsafe {
            let s = ((*src.inner.buf.get()).as_ptr() as *const u8).add(src_off);
            let d = ((*dst.inner.buf.get()).as_mut_ptr() as *mut u8).add(dst_off);
            std::ptr::copy_nonoverlapping(s, d, len);
        }
    }

    /// True if both handles refer to the same underlying region.
    pub fn same_region(&self, other: &MemoryRegion) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_rw() {
        let pd = ProtectionDomain::new();
        let mr = pd.register(64);
        assert_eq!(mr.len(), 64);
        mr.write(8, &[1, 2, 3, 4]);
        assert_eq!(mr.read(8, 4), vec![1, 2, 3, 4]);
        assert_eq!(mr.read(0, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn base_addr_is_8_aligned() {
        for len in [1usize, 7, 8, 1023, 4096] {
            let mr = ProtectionDomain::new().register(len);
            assert_eq!(mr.base_addr() % 8, 0, "len={len}");
            assert_eq!(mr.len(), len);
        }
    }

    #[test]
    fn base_addr_is_stable() {
        let pd = ProtectionDomain::new();
        let mr = pd.register(1024);
        let a = mr.base_addr();
        mr.write(0, &[9; 100]);
        let clone = mr.clone();
        assert_eq!(a, mr.base_addr());
        assert_eq!(a, clone.base_addr());
        assert!(clone.same_region(&mr));
    }

    #[test]
    fn dma_copy_moves_bytes() {
        let pd = ProtectionDomain::new();
        let src = pd.register(32);
        let dst = pd.register(32);
        src.write(0, b"hello rdma");
        MemoryRegion::dma_copy(&src, 0, &dst, 10, 10);
        assert_eq!(&dst.read(10, 10), b"hello rdma");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let pd = ProtectionDomain::new();
        let mr = pd.register(16);
        mr.write(10, &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let pd = ProtectionDomain::new();
        let mr = pd.register(16);
        let _ = mr.read(16, 1);
    }

    #[test]
    fn pds_have_distinct_ids() {
        let a = ProtectionDomain::new();
        let b = ProtectionDomain::new();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.register(8).pd_id(), a.id());
    }

    #[test]
    fn zero_copy_slice_reflects_writes() {
        let pd = ProtectionDomain::new();
        let mr = pd.register(16);
        mr.write(4, &[7, 8, 9]);
        // SAFETY: single-threaded test, range quiescent.
        let s = unsafe { mr.slice(4, 3) };
        assert_eq!(s, &[7, 8, 9]);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let pd = ProtectionDomain::new();
        let mr = pd.register(4096);
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let mr = mr.clone();
            handles.push(std::thread::spawn(move || {
                let off = t as usize * 1024;
                mr.write(off, &vec![t + 1; 1024]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u8 {
            assert!(mr.read(t as usize * 1024, 1024).iter().all(|&b| b == t + 1));
        }
    }
}
