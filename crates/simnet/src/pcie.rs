//! PCIe link accounting and bandwidth model.
//!
//! Fig 8b reports "average bandwidth consumed by RDMA via the PCIe bus".
//! On hardware the host↔DPU DMA rides PCIe; here every DMA transfer is
//! charged to a [`PcieLink`], giving byte-exact bandwidth numbers. For
//! virtual-time runs the link also converts transfer sizes into
//! nanoseconds using a configurable line rate.

use pbo_metrics::{Counter, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Direction-tagged byte counters for one host↔DPU link.
#[derive(Clone, Default)]
pub struct PcieLink {
    inner: Arc<Inner>,
}

/// Registry-backed counters mirroring the link's atomics (bound at most
/// once per link via [`PcieLink::bind_metrics`]).
struct LinkMetrics {
    bytes_to_host: Counter,
    bytes_to_device: Counter,
    transfers_to_host: Counter,
    transfers_to_device: Counter,
}

#[derive(Default)]
struct Inner {
    /// Bytes DPU → host (requests written into host RBufs).
    to_host: AtomicU64,
    /// Bytes host → DPU (responses written into DPU RBufs).
    to_device: AtomicU64,
    /// Individual DMA transfers in each direction.
    transfers_to_host: AtomicU64,
    transfers_to_device: AtomicU64,
    /// Optional registry export (one atomic load on the record path when
    /// unbound).
    metrics: OnceLock<LinkMetrics>,
}

/// Point-in-time snapshot of link counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcieStats {
    /// Bytes moved DPU → host.
    pub bytes_to_host: u64,
    /// Bytes moved host → DPU.
    pub bytes_to_device: u64,
    /// DMA transfers DPU → host.
    pub transfers_to_host: u64,
    /// DMA transfers host → DPU.
    pub transfers_to_device: u64,
}

impl PcieStats {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_host + self.bytes_to_device
    }

    /// Average bandwidth in Gbit/s over `elapsed_ns`.
    pub fn gbps(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        (self.total_bytes() as f64 * 8.0) / elapsed_ns as f64
    }
}

/// Transfer direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// DPU (RPC-over-RDMA client) to host (server).
    ToHost,
    /// Host to DPU.
    ToDevice,
}

impl PcieLink {
    /// Creates a link with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exports this link's counters into `registry` as
    /// `pcie_dma_bytes_total` / `pcie_dma_transfers_total` series labeled
    /// `{link, dir}`. Binds once; later calls are ignored.
    pub fn bind_metrics(&self, registry: &Registry, link_label: &str) {
        let _ = self.inner.metrics.set(LinkMetrics {
            bytes_to_host: registry.counter(
                "pcie_dma_bytes_total",
                "DMA bytes moved over the PCIe link",
                &[("link", link_label), ("dir", "to_host")],
            ),
            bytes_to_device: registry.counter(
                "pcie_dma_bytes_total",
                "DMA bytes moved over the PCIe link",
                &[("link", link_label), ("dir", "to_device")],
            ),
            transfers_to_host: registry.counter(
                "pcie_dma_transfers_total",
                "DMA transfers over the PCIe link",
                &[("link", link_label), ("dir", "to_host")],
            ),
            transfers_to_device: registry.counter(
                "pcie_dma_transfers_total",
                "DMA transfers over the PCIe link",
                &[("link", link_label), ("dir", "to_device")],
            ),
        });
    }

    /// Records one DMA transfer.
    pub fn record(&self, dir: Direction, bytes: u64) {
        let metrics = self.inner.metrics.get();
        match dir {
            Direction::ToHost => {
                self.inner.to_host.fetch_add(bytes, Ordering::Relaxed);
                self.inner.transfers_to_host.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics {
                    m.bytes_to_host.inc_by(bytes);
                    m.transfers_to_host.inc();
                }
            }
            Direction::ToDevice => {
                self.inner.to_device.fetch_add(bytes, Ordering::Relaxed);
                self.inner
                    .transfers_to_device
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics {
                    m.bytes_to_device.inc_by(bytes);
                    m.transfers_to_device.inc();
                }
            }
        }
    }

    /// Reads current counters.
    pub fn stats(&self) -> PcieStats {
        PcieStats {
            bytes_to_host: self.inner.to_host.load(Ordering::Relaxed),
            bytes_to_device: self.inner.to_device.load(Ordering::Relaxed),
            transfers_to_host: self.inner.transfers_to_host.load(Ordering::Relaxed),
            transfers_to_device: self.inner.transfers_to_device.load(Ordering::Relaxed),
        }
    }

    /// Resets counters (benchmark warmup discard).
    pub fn reset(&self) {
        self.inner.to_host.store(0, Ordering::Relaxed);
        self.inner.to_device.store(0, Ordering::Relaxed);
        self.inner.transfers_to_host.store(0, Ordering::Relaxed);
        self.inner.transfers_to_device.store(0, Ordering::Relaxed);
    }
}

/// Analytic bandwidth model for virtual-time experiments: converts a
/// transfer size into occupancy time on the link.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthModel {
    /// Line rate in bytes per nanosecond (e.g. 32 GB/s PCIe Gen4 x8 host
    /// link ≈ 32 B/ns; the paper's peak observed is 180 Gbit/s ≈ 22.5 B/ns).
    pub bytes_per_ns: f64,
    /// Fixed per-transfer overhead (doorbell + DMA setup), ns.
    pub per_transfer_ns: u64,
}

impl BandwidthModel {
    /// BlueField-3-class host link: ~400 Gbit/s usable ≈ 50 B/ns, ~300 ns
    /// per-transfer overhead. Chosen so the paper's 180 Gbit/s peak sits
    /// comfortably under the ceiling, as it does on hardware.
    pub fn bluefield3() -> Self {
        Self {
            bytes_per_ns: 50.0,
            per_transfer_ns: 300,
        }
    }

    /// Time the link is occupied by a transfer of `bytes`.
    pub fn occupancy_ns(&self, bytes: u64) -> u64 {
        self.per_transfer_ns + (bytes as f64 / self.bytes_per_ns).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_direction() {
        let link = PcieLink::new();
        link.record(Direction::ToHost, 1000);
        link.record(Direction::ToHost, 24);
        link.record(Direction::ToDevice, 64);
        let s = link.stats();
        assert_eq!(s.bytes_to_host, 1024);
        assert_eq!(s.bytes_to_device, 64);
        assert_eq!(s.transfers_to_host, 2);
        assert_eq!(s.transfers_to_device, 1);
        assert_eq!(s.total_bytes(), 1088);
    }

    #[test]
    fn gbps_math() {
        let s = PcieStats {
            bytes_to_host: 125_000_000, // 1 Gbit
            bytes_to_device: 0,
            transfers_to_host: 1,
            transfers_to_device: 0,
        };
        // 1 Gbit over 1 second (1e9 ns) = 1 Gbps.
        assert!((s.gbps(1_000_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(s.gbps(0), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let link = PcieLink::new();
        link.record(Direction::ToHost, 5);
        link.reset();
        assert_eq!(link.stats().total_bytes(), 0);
    }

    #[test]
    fn bound_registry_mirrors_counters() {
        let reg = Registry::new();
        let link = PcieLink::new();
        link.record(Direction::ToHost, 11); // before binding: registry silent
        link.bind_metrics(&reg, "pcie0");
        link.record(Direction::ToHost, 1000);
        link.record(Direction::ToDevice, 64);
        let l = &[("link", "pcie0"), ("dir", "to_host")];
        assert_eq!(reg.counter_value("pcie_dma_bytes_total", l), Some(1000));
        assert_eq!(reg.counter_value("pcie_dma_transfers_total", l), Some(1));
        let l = &[("link", "pcie0"), ("dir", "to_device")];
        assert_eq!(reg.counter_value("pcie_dma_bytes_total", l), Some(64));
        // Link atomics saw everything, including the pre-bind record.
        assert_eq!(link.stats().bytes_to_host, 1011);
    }

    #[test]
    fn clones_share_counters() {
        let a = PcieLink::new();
        let b = a.clone();
        a.record(Direction::ToDevice, 7);
        assert_eq!(b.stats().bytes_to_device, 7);
    }

    #[test]
    fn bandwidth_model_occupancy() {
        let m = BandwidthModel {
            bytes_per_ns: 10.0,
            per_transfer_ns: 100,
        };
        assert_eq!(m.occupancy_ns(0), 100);
        assert_eq!(m.occupancy_ns(1000), 200);
        let bf3 = BandwidthModel::bluefield3();
        assert!(bf3.occupancy_ns(8192) > bf3.per_transfer_ns);
    }
}
