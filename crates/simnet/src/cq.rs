//! Completion queues and blocking completion channels.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// What completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqeKind {
    /// A send-side work request completed (signaled send or RDMA write).
    SendComplete,
    /// A receive consumed by an incoming two-sided send.
    Recv {
        /// Bytes placed in the posted receive buffer.
        len: u32,
    },
    /// A receive consumed by an incoming RDMA write-with-immediate.
    RecvWriteImm {
        /// The 4-byte immediate value.
        imm: u32,
        /// Bytes written into the remote region.
        len: u32,
    },
}

/// One completion-queue entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cqe {
    /// The work-request id supplied at post time (send side) or the
    /// consumed receive's id (responder side).
    pub wr_id: u64,
    /// Completion kind and payload.
    pub kind: CqeKind,
    /// Queue-pair number this completion belongs to (a single CQ may be
    /// shared across connections — §III.C's server-side model).
    pub qp_num: u32,
}

struct CqInner {
    queue: Mutex<VecDeque<Cqe>>,
    cond: Condvar,
    capacity: usize,
    overflowed: Mutex<bool>,
}

/// A completion queue with bounded capacity.
///
/// Overflow is sticky and fatal-ish, as on hardware: the paper stresses
/// that the protocol's credit system exists precisely to keep CQs from
/// overflowing (§IV.C). An overflowed CQ records the fact and drops the
/// entry; tests assert the flag stays clear under correct credit
/// accounting.
#[derive(Clone)]
pub struct CompletionQueue {
    inner: Arc<CqInner>,
}

impl CompletionQueue {
    /// Creates a CQ with room for `capacity` outstanding completions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            inner: Arc::new(CqInner {
                queue: Mutex::new(VecDeque::with_capacity(capacity)),
                cond: Condvar::new(),
                capacity,
                overflowed: Mutex::new(false),
            }),
        }
    }

    /// Pushes a completion (device side). Returns false on overflow.
    pub(crate) fn push(&self, cqe: Cqe) -> bool {
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            *self.inner.overflowed.lock() = true;
            return false;
        }
        q.push_back(cqe);
        drop(q);
        self.inner.cond.notify_one();
        true
    }

    /// Non-blocking poll of up to `max` completions (verbs `ibv_poll_cq`).
    pub fn poll(&self, max: usize) -> Vec<Cqe> {
        let mut out = Vec::new();
        self.poll_into(max, &mut out);
        out
    }

    /// Allocation-free poll: appends up to `max` completions to `out`.
    /// The datapath pollers reuse one buffer across iterations (§VI.C.5's
    /// no-allocator-in-the-datapath discipline).
    pub fn poll_into(&self, max: usize, out: &mut Vec<Cqe>) -> usize {
        let mut q = self.inner.queue.lock();
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        n
    }

    /// Blocks until at least one completion arrives or `timeout` elapses,
    /// then drains up to `max`. This is the `poll()`-system-call sleep the
    /// paper uses instead of busy polling (§III.C).
    pub fn wait(&self, max: usize, timeout: Duration) -> Vec<Cqe> {
        let mut out = Vec::new();
        self.wait_into(max, timeout, &mut out);
        out
    }

    /// Allocation-free variant of [`CompletionQueue::wait`].
    pub fn wait_into(&self, max: usize, timeout: Duration, out: &mut Vec<Cqe>) -> usize {
        let mut q = self.inner.queue.lock();
        if q.is_empty() {
            let _ = self.inner.cond.wait_for(&mut q, timeout);
        }
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        n
    }

    /// Number of completions currently queued.
    pub fn depth(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Whether the CQ has ever overflowed.
    pub fn has_overflowed(&self) -> bool {
        *self.inner.overflowed.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn cqe(id: u64) -> Cqe {
        Cqe {
            wr_id: id,
            kind: CqeKind::SendComplete,
            qp_num: 1,
        }
    }

    #[test]
    fn poll_drains_fifo() {
        let cq = CompletionQueue::new(8);
        for i in 0..5 {
            assert!(cq.push(cqe(i)));
        }
        let got = cq.poll(3);
        assert_eq!(got.iter().map(|c| c.wr_id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(cq.depth(), 2);
        assert_eq!(cq.poll(10).len(), 2);
        assert!(cq.poll(10).is_empty());
    }

    #[test]
    fn overflow_is_sticky_and_drops() {
        let cq = CompletionQueue::new(2);
        assert!(cq.push(cqe(1)));
        assert!(cq.push(cqe(2)));
        assert!(!cq.push(cqe(3)));
        assert!(cq.has_overflowed());
        assert_eq!(cq.poll(10).len(), 2);
        // Flag persists even after draining.
        assert!(cq.has_overflowed());
    }

    #[test]
    fn wait_times_out_when_idle() {
        let cq = CompletionQueue::new(4);
        let t0 = Instant::now();
        let got = cq.wait(1, Duration::from_millis(30));
        assert!(got.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn wait_wakes_on_push() {
        let cq = CompletionQueue::new(4);
        let cq2 = cq.clone();
        let h = std::thread::spawn(move || cq2.wait(4, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        cq.push(cqe(42));
        let got = h.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].wr_id, 42);
    }

    #[test]
    fn wait_returns_immediately_when_nonempty() {
        let cq = CompletionQueue::new(4);
        cq.push(cqe(1));
        let t0 = Instant::now();
        let got = cq.wait(4, Duration::from_secs(10));
        assert_eq!(got.len(), 1);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
