//! A minimal gRPC-like RPC framework (the paper's *xRPC*).
//!
//! Figure 1's xRPC clients speak an ordinary RPC protocol over TCP. This
//! crate supplies that protocol for the reproduction: unary calls, a
//! service/method registry generated from protobuf schemas (the analogue
//! of `protoc`-generated service stubs plus the paper's "introspection
//! code to allow the inspection of gRPC service classes, such as mapping
//! procedure IDs to the service's callback function", §V.D), and a
//! threaded server.
//!
//! Two deployments use it:
//!
//! * **Baseline** ("CPU deserialization"): the server runs on the host and
//!   deserializes each request itself, with the same custom stack-based
//!   deserializer the offload path uses (§VI.A's fairness rule).
//! * **Offloaded**: the *DPU* runs this server merely as a protocol
//!   terminator; `pbo-core` intercepts the raw request bytes and forwards
//!   them over RPC-over-RDMA ("From the xRPC client's point of view, there
//!   is no difference, and no code needs to be changed. The only
//!   configuration change is to modify the xRPC server address", §III.A).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod frame;
pub mod metadata;
pub mod service;

pub use channel::{CallError, GrpcChannel};
pub use frame::{read_frame, write_frame, FrameError, FrameHeader, MAX_FRAME};
pub use metadata::{Metadata, MetadataError, DEFAULT_TENANT, METADATA_FLAG, TENANT_KEY};
pub use service::{
    spawn_server, MethodDescriptor, RawHandler, ServerHandle, ServiceDescriptor, ServiceRegistry,
};
