//! Client-side channel: blocking unary calls with protobuf payloads.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::metadata::{Metadata, METADATA_FLAG};
use pbo_protowire::{decode_message, encode_message, DynamicMessage, Schema};
use pbo_simnet::{SimTcpStream, TcpFabric};
use std::io;

/// Call failures.
#[derive(Debug)]
pub enum CallError {
    /// Connection/framing failure.
    Transport(FrameError),
    /// The server returned a non-zero status.
    Status(u16),
    /// The response bytes failed to decode as the expected type.
    Decode(pbo_protowire::DecodeError),
    /// The connection closed mid-call.
    Closed,
}

impl From<FrameError> for CallError {
    fn from(e: FrameError) -> Self {
        CallError::Transport(e)
    }
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Transport(e) => write!(f, "transport: {e}"),
            CallError::Status(s) => write!(f, "rpc status {s}"),
            CallError::Decode(e) => write!(f, "response decode: {e}"),
            CallError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for CallError {}

/// A client connection to an xRPC server (host or DPU — the client cannot
/// tell, which is the point of §III.A).
pub struct GrpcChannel {
    stream: SimTcpStream,
    next_tag: u16,
}

impl GrpcChannel {
    /// Connects to `addr` on `fabric`.
    pub fn connect(fabric: &TcpFabric, addr: &str) -> io::Result<Self> {
        Ok(Self {
            stream: fabric.connect(addr)?,
            next_tag: 0,
        })
    }

    /// Wraps an existing stream.
    pub fn from_stream(stream: SimTcpStream) -> Self {
        Self {
            stream,
            next_tag: 0,
        }
    }

    /// Raw unary call: bytes in, `(status, bytes)` out, blocking.
    pub fn call_raw(
        &mut self,
        method_id: u16,
        request: &[u8],
    ) -> Result<(u16, Vec<u8>), CallError> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        write_frame(&mut self.stream, method_id, tag, request)?;
        match read_frame(&mut self.stream)? {
            Some((header, payload)) => {
                debug_assert_eq!(header.call_tag, tag, "response tag mismatch");
                Ok((header.selector, payload))
            }
            None => Err(CallError::Closed),
        }
    }

    /// Raw unary call with attached metadata (§V.D's gRPC context: "passed
    /// along with the message in the payload").
    pub fn call_raw_with_metadata(
        &mut self,
        method_id: u16,
        metadata: &Metadata,
        request: &[u8],
    ) -> Result<(u16, Vec<u8>), CallError> {
        assert_eq!(method_id & METADATA_FLAG, 0, "method ids use 15 bits");
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        let mut payload = metadata.encode();
        payload.extend_from_slice(request);
        write_frame(&mut self.stream, method_id | METADATA_FLAG, tag, &payload)?;
        match read_frame(&mut self.stream)? {
            Some((header, payload)) => {
                debug_assert_eq!(header.call_tag, tag, "response tag mismatch");
                Ok((header.selector, payload))
            }
            None => Err(CallError::Closed),
        }
    }

    /// Typed unary call: serializes the request message, decodes the
    /// response as `response_type`.
    pub fn call(
        &mut self,
        method_id: u16,
        request: &DynamicMessage,
        schema: &Schema,
        response_type: &str,
    ) -> Result<DynamicMessage, CallError> {
        let bytes = encode_message(request);
        let (status, resp) = self.call_raw(method_id, &bytes)?;
        if status != 0 {
            return Err(CallError::Status(status));
        }
        let desc = schema
            .message(response_type)
            .unwrap_or_else(|| panic!("unknown response type {response_type}"));
        decode_message(schema, desc, &resp).map_err(CallError::Decode)
    }

    /// Fire a batch of pipelined raw calls and collect all responses in
    /// order (used by load generators to keep the connection busy).
    pub fn call_pipelined(
        &mut self,
        method_id: u16,
        requests: &[&[u8]],
    ) -> Result<Vec<(u16, Vec<u8>)>, CallError> {
        let base_tag = self.next_tag;
        for (i, r) in requests.iter().enumerate() {
            write_frame(
                &mut self.stream,
                method_id,
                base_tag.wrapping_add(i as u16),
                r,
            )?;
        }
        self.next_tag = base_tag.wrapping_add(requests.len() as u16);
        let mut out = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            match read_frame(&mut self.stream)? {
                Some((h, p)) => out.push((h.selector, p)),
                None => return Err(CallError::Closed),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{spawn_server, ServiceRegistry};
    use pbo_protowire::workloads::paper_schema;
    use pbo_protowire::Value;
    use std::sync::Arc;

    fn echo_fixture(addr: &str) -> (TcpFabric, crate::service::ServerHandle) {
        let fabric = TcpFabric::new();
        let listener = fabric.bind(addr);
        let reg = ServiceRegistry::new();
        reg.add_raw(
            1,
            Arc::new(|_md, req, out| {
                out.extend_from_slice(req);
                0
            }),
        );
        reg.add_raw(2, Arc::new(|_m, _r, _o| 7)); // always fails with status 7
        reg.add_raw(
            3,
            Arc::new(|md, req, out| {
                // Echo the "tenant" metadata entry then the body.
                if let Some(t) = md.get_str("tenant") {
                    out.extend_from_slice(t.as_bytes());
                    out.push(b':');
                }
                out.extend_from_slice(req);
                0
            }),
        );
        let handle = spawn_server(listener, reg);
        (fabric, handle)
    }

    #[test]
    fn raw_call_roundtrip() {
        let (fabric, handle) = echo_fixture("a:1");
        let mut ch = GrpcChannel::connect(&fabric, "a:1").unwrap();
        let (status, resp) = ch.call_raw(1, b"ping").unwrap();
        assert_eq!(status, 0);
        assert_eq!(resp, b"ping");
        handle.join();
    }

    #[test]
    fn typed_call_roundtrip() {
        let schema = paper_schema();
        let (fabric, handle) = echo_fixture("a:2");
        let mut ch = GrpcChannel::connect(&fabric, "a:2").unwrap();
        let mut req = pbo_protowire::DynamicMessage::of(&schema, "bench.Small");
        req.set(1, Value::U64(77));
        // Echo server: response bytes == request bytes, so decoding as the
        // same type must reproduce the message.
        let resp = ch.call(1, &req, &schema, "bench.Small").unwrap();
        assert_eq!(resp, req);
        handle.join();
    }

    #[test]
    fn status_propagates() {
        let (fabric, handle) = echo_fixture("a:3");
        let mut ch = GrpcChannel::connect(&fabric, "a:3").unwrap();
        let schema = paper_schema();
        let req = pbo_protowire::DynamicMessage::of(&schema, "bench.Empty");
        match ch.call(2, &req, &schema, "bench.Empty") {
            Err(CallError::Status(7)) => {}
            other => panic!("expected status 7, got {other:?}"),
        }
        handle.join();
    }

    #[test]
    fn metadata_reaches_handlers() {
        let (fabric, handle) = echo_fixture("a:5");
        let mut ch = GrpcChannel::connect(&fabric, "a:5").unwrap();
        let mut md = Metadata::new();
        md.insert("tenant", b"acme".to_vec());
        md.insert("trace-id", b"t-123".to_vec());
        let (status, resp) = ch.call_raw_with_metadata(3, &md, b"body").unwrap();
        assert_eq!(status, 0);
        assert_eq!(resp, b"acme:body");
        // Metadata-free calls to the same method see empty metadata.
        let (status, resp) = ch.call_raw(3, b"plain").unwrap();
        assert_eq!(status, 0);
        assert_eq!(resp, b"plain");
        handle.join();
    }

    #[test]
    fn pipelined_calls_preserve_order() {
        let (fabric, handle) = echo_fixture("a:4");
        let mut ch = GrpcChannel::connect(&fabric, "a:4").unwrap();
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; (i as usize) + 1]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let out = ch.call_pipelined(1, &refs).unwrap();
        assert_eq!(out.len(), 20);
        for (i, (status, p)) in out.iter().enumerate() {
            assert_eq!(*status, 0);
            assert_eq!(p, &payloads[i]);
        }
        handle.join();
    }
}
