//! Service descriptors, registries, and the threaded server.
//!
//! The paper's `protoc` plugin generates "introspection code to allow the
//! inspection of gRPC service classes, such as mapping procedure IDs to
//! the service's callback function" (§V.D). [`ServiceDescriptor`] is that
//! introspection surface: method names bound to stable 16-bit procedure
//! ids and to their protobuf request/response types. The same descriptor
//! drives all three deployments — baseline host server, DPU terminator,
//! and host compatibility layer — which is what lets application code
//! move between them unchanged.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::metadata::{Metadata, METADATA_FLAG};
use parking_lot::Mutex;
use pbo_simnet::{SimTcpListener, SimTcpStream};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One method of a service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodDescriptor {
    /// Method name (e.g. `"Put"`).
    pub name: String,
    /// Stable procedure id carried on the wire and over RPC-over-RDMA.
    pub id: u16,
    /// Fully qualified protobuf request type.
    pub request_type: String,
    /// Fully qualified protobuf response type.
    pub response_type: String,
}

/// One service: a named set of methods.
#[derive(Clone, Debug, Default)]
pub struct ServiceDescriptor {
    /// Service name (e.g. `"kv.KvStore"`).
    pub name: String,
    /// Methods in declaration order.
    pub methods: Vec<MethodDescriptor>,
}

impl ServiceDescriptor {
    /// Starts a descriptor.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            methods: Vec::new(),
        }
    }

    /// Adds a method with an explicit id.
    ///
    /// # Panics
    /// Panics on duplicate ids or names within the service.
    pub fn method(mut self, name: &str, id: u16, request_type: &str, response_type: &str) -> Self {
        assert!(
            id & METADATA_FLAG == 0,
            "method ids use 15 bits; the top bit flags metadata"
        );
        assert!(
            !self.methods.iter().any(|m| m.id == id || m.name == name),
            "duplicate method {name}/{id} in {}",
            self.name
        );
        self.methods.push(MethodDescriptor {
            name: name.to_string(),
            id,
            request_type: request_type.to_string(),
            response_type: response_type.to_string(),
        });
        self
    }

    /// Finds a method by name.
    pub fn find(&self, name: &str) -> Option<&MethodDescriptor> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Finds a method by procedure id.
    pub fn find_id(&self, id: u16) -> Option<&MethodDescriptor> {
        self.methods.iter().find(|m| m.id == id)
    }
}

/// A raw unary handler: call metadata + request bytes in,
/// `(status, response bytes)` out. Byte-level so the DPU terminator can
/// forward without deserializing.
pub type RawHandler = Arc<dyn Fn(&Metadata, &[u8], &mut Vec<u8>) -> u16 + Send + Sync>;

/// Maps procedure ids to handlers; shared by all server threads.
#[derive(Clone, Default)]
pub struct ServiceRegistry {
    handlers: Arc<Mutex<HashMap<u16, RawHandler>>>,
    descriptors: Arc<Mutex<Vec<ServiceDescriptor>>>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service descriptor together with per-method handlers.
    ///
    /// # Panics
    /// Panics if a handler is supplied for an unknown method or a
    /// procedure id collides across services.
    pub fn add_service(&self, desc: ServiceDescriptor, handlers: Vec<(&str, RawHandler)>) {
        let mut map = self.handlers.lock();
        for (name, h) in handlers {
            let m = desc
                .find(name)
                .unwrap_or_else(|| panic!("service {} has no method {name}", desc.name));
            let prev = map.insert(m.id, h);
            assert!(prev.is_none(), "procedure id {} registered twice", m.id);
        }
        self.descriptors.lock().push(desc);
    }

    /// Registers a bare handler without a descriptor (tests, internals).
    pub fn add_raw(&self, id: u16, handler: RawHandler) {
        let prev = self.handlers.lock().insert(id, handler);
        assert!(prev.is_none(), "procedure id {id} registered twice");
    }

    /// Looks up the handler for a procedure id.
    pub fn handler(&self, id: u16) -> Option<RawHandler> {
        self.handlers.lock().get(&id).cloned()
    }

    /// All registered descriptors.
    pub fn descriptors(&self) -> Vec<ServiceDescriptor> {
        self.descriptors.lock().clone()
    }

    /// Dispatches one request, writing the response into `out`.
    /// Status 1 = unimplemented (mirrors gRPC's UNIMPLEMENTED); status 13
    /// (INTERNAL) for malformed metadata.
    pub fn dispatch(&self, selector: u16, payload: &[u8], out: &mut Vec<u8>) -> u16 {
        let id = selector & !METADATA_FLAG;
        let (metadata, body) = if selector & METADATA_FLAG != 0 {
            match Metadata::decode(payload) {
                Ok((m, used)) => (m, &payload[used..]),
                Err(_) => return 13,
            }
        } else {
            (Metadata::new(), payload)
        };
        match self.handler(id) {
            Some(h) => h(&metadata, body, out),
            None => 1,
        }
    }
}

/// Handle to a running server: join/stop control plus served-call count.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    calls: Arc<AtomicU64>,
}

impl ServerHandle {
    /// Requests shutdown (in-flight connections finish their current
    /// call; the accept loop exits on its next poll).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Total unary calls served so far.
    pub fn calls_served(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Stops and joins the accept loop.
    pub fn join(mut self) {
        self.stop();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Serves `registry` on `listener`, one thread per connection (gRPC-style
/// connection concurrency). Returns immediately.
pub fn spawn_server(listener: SimTcpListener, registry: ServiceRegistry) -> ServerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let calls = Arc::new(AtomicU64::new(0));
    let stop2 = stop.clone();
    let calls2 = calls.clone();
    let accept_thread = std::thread::spawn(move || {
        let mut workers = Vec::new();
        while !stop2.load(Ordering::Acquire) {
            match listener.accept_timeout(std::time::Duration::from_millis(20)) {
                Ok(stream) => {
                    let reg = registry.clone();
                    let stop3 = stop2.clone();
                    let calls3 = calls2.clone();
                    workers.push(std::thread::spawn(move || {
                        serve_connection(stream, reg, stop3, calls3);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
                Err(_) => break,
            }
        }
        for w in workers {
            let _ = w.join();
        }
    });
    ServerHandle {
        stop,
        accept_thread: Some(accept_thread),
        calls,
    }
}

fn serve_connection(
    mut stream: SimTcpStream,
    registry: ServiceRegistry,
    stop: Arc<AtomicBool>,
    calls: Arc<AtomicU64>,
) {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let mut response = Vec::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match read_frame(&mut stream) {
            Ok(Some((header, payload))) => {
                response.clear();
                let status = registry.dispatch(header.selector, &payload, &mut response);
                // Count before writing the response: a client that has seen
                // N responses must observe calls_served() >= N.
                calls.fetch_add(1, Ordering::Relaxed);
                if write_frame(&mut stream, status, header.call_tag, &response).is_err() {
                    return;
                }
            }
            Ok(None) => return, // clean close
            Err(FrameError::Io(e)) if e.kind() == std::io::ErrorKind::TimedOut => continue,
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_simnet::TcpFabric;

    #[test]
    fn descriptor_lookup() {
        let d = ServiceDescriptor::new("kv.KvStore")
            .method("Put", 1, "kv.PutRequest", "kv.PutResponse")
            .method("Get", 2, "kv.GetRequest", "kv.GetResponse");
        assert_eq!(d.find("Put").unwrap().id, 1);
        assert_eq!(d.find_id(2).unwrap().name, "Get");
        assert!(d.find("Delete").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate method")]
    fn duplicate_method_id_panics() {
        let _ = ServiceDescriptor::new("S")
            .method("A", 1, "T", "T")
            .method("B", 1, "T", "T");
    }

    #[test]
    fn registry_dispatch_and_unimplemented() {
        let reg = ServiceRegistry::new();
        reg.add_raw(
            5,
            Arc::new(|_md, req, out| {
                out.extend_from_slice(req);
                0
            }),
        );
        let mut out = Vec::new();
        assert_eq!(reg.dispatch(5, b"abc", &mut out), 0);
        assert_eq!(out, b"abc");
        out.clear();
        assert_eq!(reg.dispatch(6, b"abc", &mut out), 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn id_collision_across_services_panics() {
        let reg = ServiceRegistry::new();
        let h: RawHandler = Arc::new(|_m, _r, _o| 0);
        reg.add_raw(1, h.clone());
        reg.add_service(
            ServiceDescriptor::new("S").method("M", 1, "T", "T"),
            vec![("M", h)],
        );
    }

    #[test]
    fn server_serves_calls_end_to_end() {
        let fabric = TcpFabric::new();
        let listener = fabric.bind("host:50051");
        let reg = ServiceRegistry::new();
        reg.add_raw(
            9,
            Arc::new(|_md, req, out| {
                out.extend_from_slice(b"echo:");
                out.extend_from_slice(req);
                0
            }),
        );
        let handle = spawn_server(listener, reg);

        let mut stream = fabric.connect("host:50051").unwrap();
        for i in 0..5u16 {
            write_frame(&mut stream, 9, i, format!("m{i}").as_bytes()).unwrap();
            let (h, p) = read_frame(&mut stream).unwrap().unwrap();
            assert_eq!(h.selector, 0);
            assert_eq!(h.call_tag, i);
            assert_eq!(p, format!("echo:m{i}").into_bytes());
        }
        assert_eq!(handle.calls_served(), 5);
        handle.join();
    }

    #[test]
    fn multiple_concurrent_clients() {
        let fabric = TcpFabric::new();
        let listener = fabric.bind("host:1");
        let reg = ServiceRegistry::new();
        reg.add_raw(
            1,
            Arc::new(|_md, req, out| {
                out.extend_from_slice(req);
                0
            }),
        );
        let handle = spawn_server(listener, reg);
        let mut clients = Vec::new();
        for c in 0..4 {
            let fabric = fabric.clone();
            clients.push(std::thread::spawn(move || {
                let mut s = fabric.connect("host:1").unwrap();
                for i in 0..50u16 {
                    let msg = format!("client{c}-{i}");
                    write_frame(&mut s, 1, i, msg.as_bytes()).unwrap();
                    let (_, p) = read_frame(&mut s).unwrap().unwrap();
                    assert_eq!(p, msg.into_bytes());
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(handle.calls_served(), 200);
        handle.join();
    }
}
