//! Wire framing for unary calls.
//!
//! Requests and responses travel as length-prefixed frames:
//!
//! ```text
//! [ u32 payload_len | u16 method_id (req) / status (resp) | u16 call_tag ]
//! [ payload … ]
//! ```
//!
//! `call_tag` lets a client pipeline several calls on one connection and
//! match responses (gRPC multiplexes with HTTP/2 stream ids; a 16-bit tag
//! plays that role here).

use std::io::{self, Read, Write};

/// Hard frame-size cap — a malformed length prefix must not allocate
/// gigabytes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Decoded frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length.
    pub len: u32,
    /// Method id in requests; status code in responses.
    pub selector: u16,
    /// Client-chosen tag echoed in the response.
    pub call_tag: u16,
}

/// Framing errors.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying stream error.
    Io(io::Error),
    /// Peer announced a frame larger than [`MAX_FRAME`].
    TooLarge(u32),
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame.
pub fn write_frame<W: Write>(
    w: &mut W,
    selector: u16,
    call_tag: u16,
    payload: &[u8],
) -> Result<(), FrameError> {
    let mut head = [0u8; 8];
    head[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..6].copy_from_slice(&selector.to_le_bytes());
    head[6..8].copy_from_slice(&call_tag.to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(FrameHeader, Vec<u8>)>, FrameError> {
    let mut head = [0u8; 8];
    // Distinguish clean EOF (zero bytes) from a torn header.
    let mut filled = 0;
    while filled < head.len() {
        let n = r.read(&mut head[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "torn frame header",
            )));
        }
        filled += n;
    }
    let header = FrameHeader {
        len: u32::from_le_bytes(head[0..4].try_into().unwrap()),
        selector: u16::from_le_bytes(head[4..6].try_into().unwrap()),
        call_tag: u16::from_le_bytes(head[6..8].try_into().unwrap()),
    };
    if header.len as usize > MAX_FRAME {
        return Err(FrameError::TooLarge(header.len));
    }
    let mut payload = vec![0u8; header.len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((header, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_simnet::SimTcpStream;

    #[test]
    fn frame_roundtrip() {
        let (mut a, mut b) = SimTcpStream::pair();
        write_frame(&mut a, 7, 42, b"payload bytes").unwrap();
        let (h, p) = read_frame(&mut b).unwrap().unwrap();
        assert_eq!(h.selector, 7);
        assert_eq!(h.call_tag, 42);
        assert_eq!(p, b"payload bytes");
    }

    #[test]
    fn empty_payload_frame() {
        let (mut a, mut b) = SimTcpStream::pair();
        write_frame(&mut a, 1, 0, b"").unwrap();
        let (h, p) = read_frame(&mut b).unwrap().unwrap();
        assert_eq!(h.len, 0);
        assert!(p.is_empty());
    }

    #[test]
    fn clean_eof_returns_none() {
        let (a, mut b) = SimTcpStream::pair();
        drop(a);
        assert!(read_frame(&mut b).unwrap().is_none());
    }

    #[test]
    fn torn_header_is_an_error() {
        let (mut a, mut b) = SimTcpStream::pair();
        use std::io::Write;
        a.write_all(&[1, 2, 3]).unwrap(); // partial header
        drop(a);
        assert!(read_frame(&mut b).is_err());
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let (mut a, mut b) = SimTcpStream::pair();
        use std::io::Write;
        let mut head = [0u8; 8];
        head[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        a.write_all(&head).unwrap();
        match read_frame(&mut b) {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, u32::MAX),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    mod properties {
        use super::*;
        use pbo_simnet::SimTcpStream;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary frame sequences roundtrip losslessly.
            #[test]
            fn frames_roundtrip(frames in proptest::collection::vec(
                (any::<u16>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..500)),
                0..12)) {
                let (mut a, mut b) = SimTcpStream::pair();
                for (sel, tag, payload) in &frames {
                    write_frame(&mut a, *sel, *tag, payload).unwrap();
                }
                drop(a);
                for (sel, tag, payload) in &frames {
                    let (h, p) = read_frame(&mut b).unwrap().expect("frame present");
                    prop_assert_eq!(h.selector, *sel);
                    prop_assert_eq!(h.call_tag, *tag);
                    prop_assert_eq!(&p, payload);
                }
                prop_assert!(read_frame(&mut b).unwrap().is_none(), "clean EOF");
            }
        }
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let (mut a, mut b) = SimTcpStream::pair();
        for i in 0..10u16 {
            write_frame(&mut a, i, i * 2, &vec![i as u8; i as usize]).unwrap();
        }
        for i in 0..10u16 {
            let (h, p) = read_frame(&mut b).unwrap().unwrap();
            assert_eq!(h.selector, i);
            assert_eq!(h.call_tag, i * 2);
            assert_eq!(p.len(), i as usize);
        }
    }
}
