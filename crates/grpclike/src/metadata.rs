//! Call metadata — the gRPC context the paper simplifies away.
//!
//! §V.D: "For the gRPC context, we use a null pointer for simplicity, but
//! metadata can also be passed along with the message in the payload."
//! This module implements that: key/value metadata is encoded as a
//! length-prefixed section travelling *inside the frame payload*, flagged
//! by the method selector's top bit, so the base framing stays unchanged
//! and metadata-free calls pay zero bytes.
//!
//! The DPU terminator — which *is* the gRPC server in the offloaded
//! deployment — consumes metadata for connection-level concerns
//! (authentication, deadlines, routing), exactly the work §III.A moves off
//! the host. Forwarding entries onward to host business logic rides the
//! same encoding inside the RPC-over-RDMA payload, as the paper suggests.

use std::fmt;

/// The selector bit marking "payload starts with a metadata section".
pub const METADATA_FLAG: u16 = 0x8000;

/// Metadata key carrying the caller's tenant identity.
pub const TENANT_KEY: &str = "tenant";

/// Tenant name assigned to traffic that carries no [`TENANT_KEY`] entry
/// (or a non-UTF-8 / empty value). Matches the scheduler's default queue.
pub const DEFAULT_TENANT: &str = "default";

/// Ordered key/value call metadata (keys may repeat, as in gRPC).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metadata {
    entries: Vec<(String, Vec<u8>)>,
}

/// Errors from metadata decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetadataError(pub String);

impl fmt::Display for MetadataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metadata: {}", self.0)
    }
}

impl std::error::Error for MetadataError {}

impl Metadata {
    /// Empty metadata.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn insert(&mut self, key: &str, value: impl Into<Vec<u8>>) -> &mut Self {
        assert!(key.len() <= u16::MAX as usize, "metadata key too long");
        self.entries.push((key.to_string(), value.into()));
        self
    }

    /// First value for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }

    /// First value for `key` as UTF-8.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        std::str::from_utf8(self.get(key)?).ok()
    }

    /// The caller's tenant: the first [`TENANT_KEY`] value, falling back
    /// to [`DEFAULT_TENANT`] when absent, empty, or not UTF-8 — every
    /// request classifies into exactly one tenant.
    pub fn tenant(&self) -> &str {
        match self.get_str(TENANT_KEY) {
            Some(t) if !t.is_empty() => t,
            _ => DEFAULT_TENANT,
        }
    }

    /// Extracts the tenant from an *encoded* metadata section without
    /// materializing the full `Metadata` (the terminator's fast path runs
    /// per request; undecodable sections classify as the default tenant).
    pub fn tenant_from_encoded(buf: &[u8]) -> String {
        match Self::decode(buf) {
            Ok((md, _)) => md.tenant().to_string(),
            Err(_) => DEFAULT_TENANT.to_string(),
        }
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[(String, Vec<u8>)] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encodes the section: `[u16 count] ( [u16 klen][u16 vlen][k][v] )*`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            2 + self
                .entries
                .iter()
                .map(|(k, v)| 4 + k.len() + v.len())
                .sum::<usize>(),
        );
        out.extend((self.entries.len() as u16).to_le_bytes());
        for (k, v) in &self.entries {
            assert!(v.len() <= u16::MAX as usize, "metadata value too long");
            out.extend((k.len() as u16).to_le_bytes());
            out.extend((v.len() as u16).to_le_bytes());
            out.extend(k.as_bytes());
            out.extend(v);
        }
        out
    }

    /// Decodes a section from the front of `buf`; returns the metadata and
    /// the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), MetadataError> {
        let err = |m: &str| MetadataError(m.to_string());
        if buf.len() < 2 {
            return Err(err("truncated count"));
        }
        let count = u16::from_le_bytes(buf[0..2].try_into().unwrap()) as usize;
        let mut pos = 2;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.len() < pos + 4 {
                return Err(err("truncated entry header"));
            }
            let klen = u16::from_le_bytes(buf[pos..pos + 2].try_into().unwrap()) as usize;
            let vlen = u16::from_le_bytes(buf[pos + 2..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if buf.len() < pos + klen + vlen {
                return Err(err("truncated entry body"));
            }
            let key = std::str::from_utf8(&buf[pos..pos + klen])
                .map_err(|_| err("key not UTF-8"))?
                .to_string();
            pos += klen;
            let value = buf[pos..pos + vlen].to_vec();
            pos += vlen;
            entries.push((key, value));
        }
        Ok((Self { entries }, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic() {
        let mut m = Metadata::new();
        m.insert("authorization", b"Bearer xyz".to_vec());
        m.insert("deadline-ms", b"250".to_vec());
        m.insert("authorization", b"second".to_vec()); // repeats allowed
        let enc = m.encode();
        let (back, used) = Metadata::decode(&enc).unwrap();
        assert_eq!(used, enc.len());
        assert_eq!(back, m);
        assert_eq!(back.get_str("deadline-ms"), Some("250"));
        // get returns the FIRST value.
        assert_eq!(back.get("authorization"), Some(&b"Bearer xyz"[..]));
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn empty_metadata_is_two_bytes() {
        let m = Metadata::new();
        assert_eq!(m.encode(), vec![0, 0]);
        let (back, used) = Metadata::decode(&[0, 0, 0xde, 0xad]).unwrap();
        assert!(back.is_empty());
        assert_eq!(used, 2); // trailing bytes belong to the message
    }

    #[test]
    fn truncation_rejected() {
        assert!(Metadata::decode(&[]).is_err());
        assert!(Metadata::decode(&[1, 0]).is_err()); // claims 1 entry, no body
        assert!(Metadata::decode(&[1, 0, 2, 0, 3, 0, b'a']).is_err());
    }

    #[test]
    fn tenant_classification_always_yields_a_tenant() {
        let mut m = Metadata::new();
        assert_eq!(m.tenant(), DEFAULT_TENANT);
        m.insert(TENANT_KEY, b"acme".to_vec());
        assert_eq!(m.tenant(), "acme");
        // Empty and non-UTF-8 values fall back instead of erroring.
        let mut empty = Metadata::new();
        empty.insert(TENANT_KEY, Vec::new());
        assert_eq!(empty.tenant(), DEFAULT_TENANT);
        let mut bad = Metadata::new();
        bad.insert(TENANT_KEY, vec![0xFF, 0xFE]);
        assert_eq!(bad.tenant(), DEFAULT_TENANT);
        // Encoded fast path agrees with the decoded path.
        assert_eq!(Metadata::tenant_from_encoded(&m.encode()), "acme");
        assert_eq!(Metadata::tenant_from_encoded(&[]), DEFAULT_TENANT);
    }

    #[test]
    fn non_utf8_key_rejected() {
        // count=1, klen=1, vlen=0, key=0xFF.
        let bad = [1, 0, 1, 0, 0, 0, 0xFF];
        assert!(Metadata::decode(&bad).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_random(entries in proptest::collection::vec(
            ("[a-z\\-]{1,20}", proptest::collection::vec(any::<u8>(), 0..50)), 0..10)) {
            let mut m = Metadata::new();
            for (k, v) in &entries {
                m.insert(k, v.clone());
            }
            let mut enc = m.encode();
            let orig_len = enc.len();
            enc.extend_from_slice(b"message bytes follow");
            let (back, used) = Metadata::decode(&enc).unwrap();
            prop_assert_eq!(used, orig_len);
            prop_assert_eq!(back.entries(), m.entries());
        }
    }
}
