//! Adaptive per-class offload routing.
//!
//! The paper's own caveat is PCIe amplification: DPU-side
//! deserialization *loses* for char-heavy message classes ("the string
//! deserialization is much faster without offloading since x86 SIMD
//! instructions permit processing the Unicode validation very quickly",
//! §V), yet the offload-vs-host choice elsewhere in this codebase was
//! static per run — only the circuit breaker, a blunt all-or-nothing
//! fault response, ever moved traffic back to the host.
//!
//! [`PolicyEngine`] makes that decision **per message class** (per
//! procedure id) and keeps making it: a graceful-degradation control
//! loop that starts from the dpusim cost coefficients as a prior
//! ([`pbo_dpusim::route_prior`]) and folds in live telemetry as
//! feedback — PCIe-amplification SLO burn, the DPU-side `deserialize`
//! stage p99, and per-tenant queue depth from the scheduler. The loop:
//!
//! 1. Each class carries EWMA estimates of its capacity-normalized
//!    per-route cost, seeded from the prior and refreshed from the real
//!    work-unit counts ([`pbo_protowire::DeserStats`]) of live
//!    deserializations.
//! 2. A scalar *pressure* is scraped from telemetry (max of the
//!    normalized signal terms). Pressure above target inflates the
//!    effective DPU cost — under DPU-side stress, marginal classes
//!    degrade to the host first, cheapest-to-offload classes last.
//! 3. The biased DPU/host cost ratio is compared against **dual
//!    thresholds** with a **dwell-time floor** (the same hysteresis
//!    discipline as the circuit breaker): a class flips to host only
//!    above `enter_host_score`, back to DPU only below
//!    `exit_host_score`, never sooner than `dwell_ns` after its last
//!    transition, and at most one class flips per evaluation.
//!
//! Route flips are rare, observable events: each one is counted
//! (`policy_flips_total{class}`), gauged (`policy_route{class}`),
//! flight-recorded and trace-staged
//! ([`pbo_trace::stages::POLICY_FLIP`]). The breaker always takes
//! precedence: a breaker-forced host degrade is *not* a policy decision
//! and is never recorded as one — and when the breaker closes again the
//! caller re-consults the policy instead of unconditionally restoring
//! offload.

#![warn(missing_docs)]

pub mod engine;
pub mod signals;

pub use engine::{ClassSnapshot, PolicyConfig, PolicyEngine, Route, RouteChoice};
pub use signals::PolicySignals;
