//! The per-class routing control loop.

use crate::signals::PolicySignals;
use pbo_dpusim::{route_prior, PriorShape, RoutePrior};
use pbo_metrics::{Counter, Gauge, Registry, SloTracker};
use pbo_protowire::DeserStats;
use pbo_trace::{stages, triggers, FlightRecorder, Span, SpanSink, Tracer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which side deserializes a message class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Route {
    /// Deserialize on the DPU; the host receives a native object.
    Dpu,
    /// Forward serialized bytes; the host deserializes (degraded /
    /// SIMD-advantaged path).
    Host,
}

impl Route {
    /// Stable metric label.
    pub fn name(self) -> &'static str {
        match self {
            Route::Dpu => "dpu",
            Route::Host => "host",
        }
    }

    fn idx(self) -> usize {
        match self {
            Route::Dpu => 0,
            Route::Host => 1,
        }
    }
}

/// One routing decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteChoice {
    /// The route this request should take.
    pub route: Route,
    /// True when this is a probe: the class is host-resident but this
    /// request samples the DPU route to refresh the cost estimate.
    /// Probes are not flips and are not counted as such.
    pub probe: bool,
}

/// Control-loop knobs. Defaults are production-shaped; benches and
/// tests tighten the dwell to their own timescales.
#[derive(Clone, Debug)]
pub struct PolicyConfig {
    /// Platform shape used to capacity-normalize per-route costs.
    pub shape: PriorShape,
    /// A DPU-resident class flips to host when its biased DPU/host cost
    /// ratio exceeds this (must be > `exit_host_score`).
    pub enter_host_score: f64,
    /// A host-resident class returns to the DPU when its biased ratio
    /// drops below this. The `(exit, enter)` gap is the hysteresis band.
    pub exit_host_score: f64,
    /// Minimum time between route changes of one class, ns.
    pub dwell_ns: u64,
    /// Smoothing factor for the per-route cost EWMAs.
    pub ewma_alpha: f64,
    /// Every `probe_every`-th request of a host-resident class samples
    /// the DPU route to keep its cost estimate fresh (0 disables).
    pub probe_every: u64,
    /// How strongly pressure above target inflates the effective DPU
    /// cost: bias = 1 + gain × max(0, pressure − target).
    pub pressure_gain: f64,
    /// Pressure level considered "at capacity" (1.0 = an SLO burning
    /// exactly at budget).
    pub pressure_target: f64,
    /// Scheduler backlog (sum of `sched_queue_depth`) treated as
    /// pressure 1.0 (0 disables the queue-depth term).
    pub queue_depth_cap: i64,
    /// Name of the deserialize-stage SLO whose burn rate feeds the
    /// pressure (None disables the term).
    pub deser_slo_name: Option<String>,
    /// `pcie_amplification_milli` gauge value treated as pressure 1.0
    /// (0 disables the amplification term).
    pub amp_budget_milli: i64,
    /// Minimum interval between telemetry scrapes in
    /// [`PolicyEngine::refresh_signals`], ns.
    pub signal_refresh_ns: u64,
    /// Static override: every class always takes this route and nothing
    /// ever flips (the bench's all-DPU / all-host arms).
    pub pinned: Option<Route>,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            shape: PriorShape::default(),
            enter_host_score: 1.15,
            exit_host_score: 1.0,
            dwell_ns: 50_000_000,
            ewma_alpha: 0.2,
            probe_every: 64,
            pressure_gain: 0.5,
            pressure_target: 1.0,
            queue_depth_cap: 64,
            deser_slo_name: None,
            amp_budget_milli: 0,
            signal_refresh_ns: 1_000_000,
            pinned: None,
        }
    }
}

/// Point-in-time view of one class (for `pbo_top` and benches).
#[derive(Clone, Debug)]
pub struct ClassSnapshot {
    /// Procedure id.
    pub class: u16,
    /// Display label.
    pub label: String,
    /// Current route.
    pub route: Route,
    /// Route changes so far.
    pub flips: u64,
    /// Engine-clock timestamp of the last flip (None = never flipped).
    pub last_flip_ns: Option<u64>,
    /// Current (unbiased) DPU/host cost ratio estimate.
    pub ratio: f64,
}

struct ClassMetrics {
    route_total: [Counter; 2],
    probes: Counter,
    flips: Counter,
    route_gauge: Gauge,
    last_flip_ms: Gauge,
}

struct ClassState {
    label: String,
    route: Route,
    dpu_ewma: f64,
    host_ewma: f64,
    /// Registration or last-flip timestamp (engine clock) — the dwell
    /// floor is measured from here.
    since_ns: u64,
    last_flip_ns: Option<u64>,
    flips: u64,
    calls_since_probe: u64,
    samples: u64,
    metrics: Option<ClassMetrics>,
}

impl ClassState {
    fn ratio(&self) -> f64 {
        if self.host_ewma <= 0.0 {
            1.0
        } else {
            self.dpu_ewma / self.host_ewma
        }
    }
}

/// The adaptive offload policy: per-class route state plus the control
/// loop that moves it. Single-owner (lives on the session or poller
/// thread); all decision inputs arrive through explicit calls.
pub struct PolicyEngine {
    cfg: PolicyConfig,
    classes: BTreeMap<u16, ClassState>,
    signals: PolicySignals,
    last_refresh_ns: u64,
    registry: Option<Arc<Registry>>,
    slo: Option<SloTracker>,
    flight: Option<FlightRecorder>,
    trace: Option<(Tracer, SpanSink)>,
}

impl PolicyEngine {
    /// An engine with the given knobs.
    pub fn new(cfg: PolicyConfig) -> Self {
        assert!(
            cfg.pinned.is_some() || cfg.enter_host_score > cfg.exit_host_score,
            "hysteresis requires enter_host_score > exit_host_score"
        );
        Self {
            cfg,
            classes: BTreeMap::new(),
            signals: PolicySignals::default(),
            last_refresh_ns: 0,
            registry: None,
            slo: None,
            flight: None,
            trace: None,
        }
    }

    /// A statically pinned engine: every class always routes to `route`
    /// (the bench's all-DPU / all-host comparison arms).
    pub fn pinned(route: Route) -> Self {
        Self::new(PolicyConfig {
            pinned: Some(route),
            ..PolicyConfig::default()
        })
    }

    /// The knobs in force.
    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// Binds a metrics registry: decisions feed
    /// `policy_route_total{class,route}`, flips feed
    /// `policy_flips_total{class}` / `policy_route{class}` /
    /// `policy_last_flip_ms{class}`, probes feed
    /// `policy_probes_total{class}`.
    pub fn bind_metrics(&mut self, registry: &Arc<Registry>) {
        self.registry = Some(registry.clone());
        let reg = registry.clone();
        for st in self.classes.values_mut() {
            Self::ensure_metrics(&reg, st);
        }
    }

    /// Attaches the flight recorder: each flip records a
    /// [`pbo_trace::triggers::POLICY_FLIP`] mark and raises the trigger
    /// (route changes are exactly the anomalies the ring is for).
    pub fn bind_flight(&mut self, flight: &FlightRecorder) {
        self.flight = Some(flight.clone());
    }

    /// Attaches a tracer: each flip emits a
    /// [`pbo_trace::stages::POLICY_FLIP`] span on the `{label}/policy`
    /// sink (trace id = class, bytes = cumulative flip count).
    pub fn set_tracer(&mut self, tracer: &Tracer, label: &str) {
        self.trace = if tracer.is_enabled() {
            Some((tracer.clone(), tracer.sink(&format!("{label}/policy"))))
        } else {
            None
        };
    }

    /// Attaches the SLO tracker whose burn rates feed the pressure
    /// signal (see [`PolicyConfig::deser_slo_name`]).
    pub fn bind_slo(&mut self, slo: &SloTracker) {
        self.slo = Some(slo.clone());
    }

    /// Registers a message class with an optional cost prior. A class
    /// starts offloaded — this is an offload engine, the host is the
    /// degradation path — unless its prior already exceeds the enter
    /// threshold (a class known to be char-heavy never pays the first
    /// excursion).
    pub fn register_class(
        &mut self,
        class: u16,
        label: &str,
        prior: Option<RoutePrior>,
        now_ns: u64,
    ) {
        let (dpu, host) = match prior {
            Some(p) => (p.dpu_ns, p.host_ns),
            None => (1.0, 1.0),
        };
        let ratio = if host > 0.0 { dpu / host } else { 1.0 };
        let route = match self.cfg.pinned {
            Some(p) => p,
            None if ratio > self.cfg.enter_host_score => Route::Host,
            None => Route::Dpu,
        };
        let mut st = ClassState {
            label: label.to_string(),
            route,
            dpu_ewma: dpu,
            host_ewma: host,
            since_ns: now_ns,
            last_flip_ns: None,
            flips: 0,
            calls_since_probe: 0,
            samples: 0,
            metrics: None,
        };
        if let Some(reg) = &self.registry {
            Self::ensure_metrics(reg, &mut st);
        }
        self.classes.insert(class, st);
    }

    fn ensure_metrics(reg: &Arc<Registry>, st: &mut ClassState) {
        if st.metrics.is_some() {
            return;
        }
        let c = st.label.as_str();
        let m = ClassMetrics {
            route_total: [
                reg.counter(
                    "policy_route_total",
                    "Requests routed per class and route by the offload policy",
                    &[("class", c), ("route", Route::Dpu.name())],
                ),
                reg.counter(
                    "policy_route_total",
                    "Requests routed per class and route by the offload policy",
                    &[("class", c), ("route", Route::Host.name())],
                ),
            ],
            probes: reg.counter(
                "policy_probes_total",
                "Host-resident requests sampled on the DPU route to refresh the cost estimate",
                &[("class", c)],
            ),
            flips: reg.counter(
                "policy_flips_total",
                "Route changes per class",
                &[("class", c)],
            ),
            route_gauge: reg.gauge(
                "policy_route",
                "Current route per class (0 = DPU, 1 = host)",
                &[("class", c)],
            ),
            last_flip_ms: reg.gauge(
                "policy_last_flip_ms",
                "Engine-clock time of the last route change, ms (0 = never)",
                &[("class", c)],
            ),
        };
        m.route_gauge.set(st.route.idx() as i64);
        m.last_flip_ms.set(0);
        st.metrics = Some(m);
    }

    /// Decides the route for one request of `class`. Unknown classes are
    /// auto-registered without a prior. This is the hot path: O(1), no
    /// allocation after a class's first call.
    pub fn route(&mut self, class: u16, now_ns: u64) -> RouteChoice {
        if !self.classes.contains_key(&class) {
            self.register_class(class, &format!("class{class}"), None, now_ns);
        }
        let pinned = self.cfg.pinned;
        let probe_every = self.cfg.probe_every;
        let st = self.classes.get_mut(&class).expect("registered above");
        let mut probe = false;
        let route = match pinned {
            Some(p) => p,
            None => match st.route {
                Route::Host if probe_every > 0 => {
                    st.calls_since_probe += 1;
                    if st.calls_since_probe >= probe_every {
                        st.calls_since_probe = 0;
                        probe = true;
                        Route::Dpu
                    } else {
                        Route::Host
                    }
                }
                r => r,
            },
        };
        if let Some(m) = &st.metrics {
            m.route_total[route.idx()].inc();
            if probe {
                m.probes.inc();
            }
        }
        RouteChoice { route, probe }
    }

    /// Feeds the real work-unit counts of one deserialized request back
    /// into the class's cost estimate. One observation refreshes *both*
    /// routes' estimates — the model coefficients price the same work on
    /// either platform.
    pub fn observe_stats(
        &mut self,
        class: u16,
        stats: &DeserStats,
        wire_bytes: u64,
        native_bytes: u64,
        now_ns: u64,
    ) {
        if !self.classes.contains_key(&class) {
            self.register_class(class, &format!("class{class}"), None, now_ns);
        }
        let p = route_prior(stats, wire_bytes, native_bytes, &self.cfg.shape);
        let a = self.cfg.ewma_alpha;
        let st = self.classes.get_mut(&class).expect("registered above");
        if st.samples == 0 {
            st.dpu_ewma = p.dpu_ns;
            st.host_ewma = p.host_ns;
        } else {
            st.dpu_ewma += a * (p.dpu_ns - st.dpu_ewma);
            st.host_ewma += a * (p.host_ns - st.host_ewma);
        }
        st.samples += 1;
    }

    /// Overrides the telemetry signals directly (tests; production paths
    /// use [`PolicyEngine::refresh_signals`]).
    pub fn set_signals(&mut self, s: PolicySignals) {
        self.signals = s;
    }

    /// The signals last scraped or set.
    pub fn signals(&self) -> PolicySignals {
        self.signals
    }

    /// Scrapes the bound registry / SLO tracker for fresh pressure
    /// signals and re-evaluates routes. Throttled to
    /// [`PolicyConfig::signal_refresh_ns`]; call freely from the hot
    /// loop.
    pub fn refresh_signals(&mut self, now_ns: u64) {
        if self.last_refresh_ns != 0
            && now_ns.saturating_sub(self.last_refresh_ns) < self.cfg.signal_refresh_ns
        {
            return;
        }
        self.last_refresh_ns = now_ns;
        if let Some(reg) = &self.registry {
            self.signals = PolicySignals::scrape(
                reg,
                self.slo.as_ref(),
                self.cfg.deser_slo_name.as_deref(),
                now_ns,
            );
        }
        self.reevaluate(now_ns);
    }

    /// The scalar pressure the control loop currently sees: the max of
    /// the enabled normalized signal terms (1.0 = at capacity).
    pub fn pressure(&self) -> f64 {
        let mut p = 0.0f64;
        if self.cfg.queue_depth_cap > 0 {
            p = p.max(self.signals.queue_depth as f64 / self.cfg.queue_depth_cap as f64);
        }
        if self.cfg.amp_budget_milli > 0 {
            p = p.max(self.signals.amp_milli as f64 / self.cfg.amp_budget_milli as f64);
        }
        if self.cfg.deser_slo_name.is_some() && self.signals.deser_burn > 0.0 {
            p = p.max(self.signals.deser_burn);
        }
        p
    }

    /// Runs one control-loop evaluation: computes the pressure bias,
    /// scores every class, and flips **at most one** — the one furthest
    /// past its threshold — subject to each class's dwell floor.
    pub fn reevaluate(&mut self, now_ns: u64) {
        if self.cfg.pinned.is_some() {
            return;
        }
        let bias =
            1.0 + self.cfg.pressure_gain * (self.pressure() - self.cfg.pressure_target).max(0.0);
        let mut best: Option<(u16, Route)> = None;
        let mut best_margin = 0.0f64;
        for (&class, st) in &self.classes {
            if now_ns.saturating_sub(st.since_ns) < self.cfg.dwell_ns {
                continue;
            }
            let score = st.ratio() * bias;
            let (margin, to) = match st.route {
                Route::Dpu => (score - self.cfg.enter_host_score, Route::Host),
                Route::Host => (self.cfg.exit_host_score - score, Route::Dpu),
            };
            if margin > best_margin {
                best_margin = margin;
                best = Some((class, to));
            }
        }
        if let Some((class, to)) = best {
            self.flip(class, to, now_ns);
        }
    }

    fn flip(&mut self, class: u16, to: Route, now_ns: u64) {
        let st = self.classes.get_mut(&class).expect("scored above");
        st.route = to;
        st.flips += 1;
        st.since_ns = now_ns;
        st.last_flip_ns = Some(now_ns);
        st.calls_since_probe = 0;
        if let Some(m) = &st.metrics {
            m.flips.inc();
            m.route_gauge.set(to.idx() as i64);
            m.last_flip_ms.set((now_ns / 1_000_000) as i64);
        }
        let flips = st.flips;
        let wall_ns = self
            .trace
            .as_ref()
            .map(|(t, _)| t.now_ns())
            .unwrap_or(now_ns);
        if let Some(f) = &self.flight {
            f.record_mark(class as u64, triggers::POLICY_FLIP, wall_ns, flips);
            f.trigger(triggers::POLICY_FLIP, wall_ns);
        }
        if let Some((_, sink)) = &self.trace {
            sink.record(Span {
                trace_id: class as u64,
                stage: stages::POLICY_FLIP,
                start_ns: wall_ns,
                end_ns: wall_ns,
                bytes: flips,
            });
        }
    }

    /// The current route of a class, if registered.
    pub fn route_of(&self, class: u16) -> Option<Route> {
        self.classes.get(&class).map(|s| s.route)
    }

    /// Route changes of one class so far.
    pub fn flips(&self, class: u16) -> u64 {
        self.classes.get(&class).map(|s| s.flips).unwrap_or(0)
    }

    /// Route changes across all classes.
    pub fn total_flips(&self) -> u64 {
        self.classes.values().map(|s| s.flips).sum()
    }

    /// Snapshot of every registered class, in class order.
    pub fn snapshot(&self) -> Vec<ClassSnapshot> {
        self.classes
            .iter()
            .map(|(&class, st)| ClassSnapshot {
                class,
                label: st.label.clone(),
                route: st.route,
                flips: st.flips,
                last_flip_ns: st.last_flip_ns,
                ratio: st.ratio(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_metrics::Registry;
    use pbo_protowire::workloads::{gen_char_array, gen_int_array, paper_schema, Mt19937};
    use pbo_protowire::{encode_message, NullSink, StackDeserializer};

    fn stats_of(kind: &str, n: usize) -> (DeserStats, u64) {
        let schema = paper_schema();
        let mut rng = Mt19937::new(Mt19937::PAPER_SEED);
        let (msg, ty) = match kind {
            "ints" => (gen_int_array(&schema, &mut rng, n), "bench.IntArray"),
            "chars" => (gen_char_array(&schema, &mut rng, n), "bench.CharArray"),
            _ => unreachable!(),
        };
        let bytes = encode_message(&msg);
        let desc = schema.message(ty).unwrap();
        let stats = StackDeserializer::new(&schema)
            .deserialize(desc, &bytes, &mut NullSink)
            .unwrap();
        (stats, bytes.len() as u64)
    }

    fn quick_cfg() -> PolicyConfig {
        PolicyConfig {
            dwell_ns: 0,
            probe_every: 4,
            ..PolicyConfig::default()
        }
    }

    #[test]
    fn prior_seeds_initial_routes_per_paper_split() {
        let mut e = PolicyEngine::new(quick_cfg());
        let (ints, iw) = stats_of("ints", 512);
        let (chars, cw) = stats_of("chars", 8000);
        let shape = PriorShape::default();
        e.register_class(
            2,
            "ints512",
            Some(route_prior(&ints, iw, 4 * 512 + 64, &shape)),
            0,
        );
        e.register_class(
            3,
            "chars8000",
            Some(route_prior(&chars, cw, cw + 32, &shape)),
            0,
        );
        assert_eq!(e.route_of(2), Some(Route::Dpu), "flat-scalar offloads");
        assert_eq!(e.route_of(3), Some(Route::Host), "char-heavy stays host");
        assert_eq!(e.total_flips(), 0, "initial placement is not a flip");
    }

    #[test]
    fn unknown_class_defaults_to_dpu() {
        let mut e = PolicyEngine::new(quick_cfg());
        assert_eq!(e.route(9, 0).route, Route::Dpu);
        assert!(!e.route(9, 0).probe);
    }

    #[test]
    fn pinned_engine_never_flips_or_probes() {
        let mut e = PolicyEngine::pinned(Route::Host);
        let (chars, cw) = stats_of("chars", 8000);
        for t in 0..200u64 {
            assert_eq!(e.route(3, t).route, Route::Host);
            e.observe_stats(3, &chars, cw, cw + 32, t);
            e.reevaluate(t);
        }
        assert_eq!(e.total_flips(), 0);
        assert!(!e.route(3, 999).probe, "pinned engines do not probe");
    }

    #[test]
    fn observations_move_a_class_across_the_thresholds() {
        let mut e = PolicyEngine::new(quick_cfg());
        e.register_class(7, "mutable", None, 0);
        assert_eq!(e.route_of(7), Some(Route::Dpu));
        // Char-heavy observations push the ratio above enter_host_score.
        let (chars, cw) = stats_of("chars", 8000);
        for t in 0..16u64 {
            e.observe_stats(7, &chars, cw, cw + 32, t);
        }
        e.reevaluate(16);
        assert_eq!(e.route_of(7), Some(Route::Host), "degraded to host");
        assert_eq!(e.flips(7), 1);
        // Flat-scalar observations bring it back under exit_host_score.
        let (ints, iw) = stats_of("ints", 512);
        for t in 17..64u64 {
            e.observe_stats(7, &ints, iw, 4 * 512 + 64, t);
        }
        e.reevaluate(64);
        assert_eq!(e.route_of(7), Some(Route::Dpu), "restored to DPU");
        assert_eq!(e.flips(7), 2);
    }

    #[test]
    fn hysteresis_band_holds_current_route() {
        // A ratio between exit (1.0) and enter (1.15) must flip nothing,
        // whichever side the class currently sits on.
        let mut e = PolicyEngine::new(quick_cfg());
        e.register_class(
            1,
            "banded_dpu",
            Some(RoutePrior {
                dpu_ns: 105.0,
                host_ns: 100.0,
            }),
            0,
        );
        e.register_class(
            2,
            "banded_host",
            Some(RoutePrior {
                dpu_ns: 105.0,
                host_ns: 100.0,
            }),
            0,
        );
        // Park class 2 on the host side of the band.
        e.classes.get_mut(&2).unwrap().route = Route::Host;
        for t in 0..100u64 {
            e.reevaluate(t);
        }
        assert_eq!(e.route_of(1), Some(Route::Dpu));
        assert_eq!(e.route_of(2), Some(Route::Host));
        assert_eq!(e.total_flips(), 0);
    }

    #[test]
    fn dwell_floor_blocks_immediate_flip_back() {
        let mut e = PolicyEngine::new(PolicyConfig {
            dwell_ns: 1_000,
            ..quick_cfg()
        });
        e.register_class(
            5,
            "c",
            Some(RoutePrior {
                dpu_ns: 200.0,
                host_ns: 100.0,
            }),
            0,
        );
        assert_eq!(e.route_of(5), Some(Route::Host), "prior places it host");
        // Make DPU look cheap: candidate flip Host→Dpu, but dwell runs
        // from registration at t=0.
        e.classes.get_mut(&5).unwrap().dpu_ewma = 50.0;
        e.reevaluate(500);
        assert_eq!(e.route_of(5), Some(Route::Host), "dwell not yet served");
        e.reevaluate(1_000);
        assert_eq!(e.route_of(5), Some(Route::Dpu), "flips once dwell elapses");
        // And the return trip also waits a full dwell.
        e.classes.get_mut(&5).unwrap().dpu_ewma = 200.0;
        e.reevaluate(1_500);
        assert_eq!(e.route_of(5), Some(Route::Dpu));
        e.reevaluate(2_100);
        assert_eq!(e.route_of(5), Some(Route::Host));
    }

    #[test]
    fn at_most_one_flip_per_evaluation() {
        let mut e = PolicyEngine::new(quick_cfg());
        for c in 0..4u16 {
            e.register_class(
                c,
                &format!("c{c}"),
                Some(RoutePrior {
                    dpu_ns: 300.0,
                    host_ns: 100.0,
                }),
                0,
            );
            // register puts ratio-3 classes on host; force them DPU-resident.
            e.classes.get_mut(&c).unwrap().route = Route::Dpu;
        }
        e.reevaluate(1);
        assert_eq!(e.total_flips(), 1, "one class per evaluation");
        e.reevaluate(2);
        e.reevaluate(3);
        e.reevaluate(4);
        assert_eq!(e.total_flips(), 4, "the rest follow one at a time");
    }

    #[test]
    fn pressure_bias_degrades_marginal_class() {
        let mut e = PolicyEngine::new(PolicyConfig {
            queue_depth_cap: 10,
            ..quick_cfg()
        });
        // Ratio 1.05: inside the band at zero pressure.
        e.register_class(
            4,
            "marginal",
            Some(RoutePrior {
                dpu_ns: 105.0,
                host_ns: 100.0,
            }),
            0,
        );
        e.reevaluate(1);
        assert_eq!(e.route_of(4), Some(Route::Dpu));
        // Queue backlog at 3× capacity: bias = 1 + 0.5×2 = 2 → score 2.1.
        e.set_signals(PolicySignals {
            queue_depth: 30,
            ..PolicySignals::default()
        });
        assert!(e.pressure() > 2.9);
        e.reevaluate(2);
        assert_eq!(e.route_of(4), Some(Route::Host), "pressure degrades it");
        // Pressure clears: score back to 1.05 > exit 1.0 — it stays on
        // host until the ratio itself justifies restoring.
        e.set_signals(PolicySignals::default());
        e.reevaluate(3);
        assert_eq!(e.route_of(4), Some(Route::Host));
    }

    #[test]
    fn host_resident_class_probes_every_nth_call() {
        let mut e = PolicyEngine::new(quick_cfg()); // probe_every = 4
        e.register_class(
            6,
            "h",
            Some(RoutePrior {
                dpu_ns: 300.0,
                host_ns: 100.0,
            }),
            0,
        );
        let mut dpu = 0;
        let mut probes = 0;
        for t in 0..20u64 {
            let c = e.route(6, t);
            if c.route == Route::Dpu {
                dpu += 1;
                assert!(c.probe);
                probes += 1;
            }
        }
        assert_eq!(dpu, 5, "every 4th of 20 calls probes the DPU route");
        assert_eq!(probes, 5);
        assert_eq!(e.total_flips(), 0, "probes are not flips");
    }

    #[test]
    fn flips_are_counted_gauged_and_flight_recorded() {
        let reg = Arc::new(Registry::new());
        let flight = FlightRecorder::new(64, 4);
        let mut e = PolicyEngine::new(quick_cfg());
        e.bind_metrics(&reg);
        e.bind_flight(&flight);
        e.register_class(
            2,
            "ints512",
            Some(RoutePrior {
                dpu_ns: 90.0,
                host_ns: 100.0,
            }),
            0,
        );
        e.route(2, 1);
        e.route(2, 2);
        assert_eq!(
            reg.counter_value(
                "policy_route_total",
                &[("class", "ints512"), ("route", "dpu")]
            ),
            Some(2)
        );
        assert_eq!(
            reg.gauge_value("policy_route", &[("class", "ints512")]),
            Some(0)
        );
        // Degrade it.
        e.classes.get_mut(&2).unwrap().dpu_ewma = 300.0;
        e.reevaluate(5_000_000);
        assert_eq!(
            reg.counter_value("policy_flips_total", &[("class", "ints512")]),
            Some(1)
        );
        assert_eq!(
            reg.gauge_value("policy_route", &[("class", "ints512")]),
            Some(1)
        );
        assert_eq!(
            reg.gauge_value("policy_last_flip_ms", &[("class", "ints512")]),
            Some(5)
        );
        assert_eq!(flight.trigger_count(), 1, "flip raised the flight trigger");
        let recs = flight.snapshot();
        assert!(recs.iter().any(|r| r.stage == triggers::POLICY_FLIP));
    }
}
