//! Telemetry scraping: turns the live metrics surface into the control
//! loop's pressure inputs.

use pbo_metrics::{Registry, SloTracker};

/// Gauge holding the windowed PCIe amplification ratio in milli units
/// (registered via `SloTracker::add_ratio("pcie_amplification", ..)`:
/// DMA'd native bytes over wire bytes).
pub const AMP_GAUGE: &str = "pcie_amplification_milli";

/// Per-tenant scheduler backlog gauge (from
/// `TenantScheduler::bind_metrics`); the policy reads the sum across
/// tenants.
pub const QUEUE_DEPTH_GAUGE: &str = "sched_queue_depth";

/// The raw telemetry inputs one control-loop evaluation sees.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PolicySignals {
    /// Total scheduler backlog (requests queued across tenants).
    pub queue_depth: i64,
    /// PCIe amplification ratio, milli units (1000 = native bytes equal
    /// wire bytes; 0 = unknown).
    pub amp_milli: i64,
    /// Burn rate of the DPU-side deserialize-stage SLO (1.0 = consuming
    /// its error budget exactly at rate; 0 = healthy or absent).
    pub deser_burn: f64,
}

impl PolicySignals {
    /// Scrapes the current signal values.
    ///
    /// * queue depth — sum of [`QUEUE_DEPTH_GAUGE`] across tenants;
    /// * amplification — the [`AMP_GAUGE`] gauge, if registered;
    /// * deserialize p99 burn — evaluates `slo` at `now_ns` (which also
    ///   refreshes the windowed ratio gauges, amplification included)
    ///   and reads the burn rate of the objective named `slo_name`.
    pub fn scrape(
        registry: &Registry,
        slo: Option<&SloTracker>,
        slo_name: Option<&str>,
        now_ns: u64,
    ) -> Self {
        let deser_burn = match (slo, slo_name) {
            (Some(t), Some(name)) => t
                .evaluate(now_ns)
                .into_iter()
                .find(|s| s.name == name)
                .map(|s| s.burn_rate)
                .unwrap_or(0.0),
            _ => 0.0,
        };
        Self {
            queue_depth: registry.gauge_sum(QUEUE_DEPTH_GAUGE),
            amp_milli: registry.gauge_value(AMP_GAUGE, &[]).unwrap_or(0),
            deser_burn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_metrics::{SlidingConfig, SloSpec};
    use std::sync::Arc;

    #[test]
    fn scrape_reads_queue_depth_and_amp() {
        let reg = Arc::new(Registry::new());
        reg.gauge(QUEUE_DEPTH_GAUGE, "", &[("tenant", "a")]).set(7);
        reg.gauge(QUEUE_DEPTH_GAUGE, "", &[("tenant", "b")]).set(5);
        reg.gauge(AMP_GAUGE, "", &[]).set(2500);
        let s = PolicySignals::scrape(&reg, None, None, 0);
        assert_eq!(s.queue_depth, 12);
        assert_eq!(s.amp_milli, 2500);
        assert_eq!(s.deser_burn, 0.0);
    }

    #[test]
    fn scrape_reads_slo_burn_by_name() {
        let reg = Arc::new(Registry::new());
        let slo = SloTracker::new(reg.clone(), SlidingConfig::seconds(4));
        slo.add(SloSpec::p99("policy_deser_p99", "deserialize", 1_000.0));
        // Every observation over threshold: burn far above 1.0.
        for i in 0..100u64 {
            slo.observe_stage("deserialize", i * 1_000, 50_000.0);
        }
        let s = PolicySignals::scrape(&reg, Some(&slo), Some("policy_deser_p99"), 100_000);
        assert!(s.deser_burn > 1.0, "burn {}", s.deser_burn);
        // Unknown objective name reads as healthy.
        let s2 = PolicySignals::scrape(&reg, Some(&slo), Some("nope"), 100_000);
        assert_eq!(s2.deser_burn, 0.0);
    }

    #[test]
    fn missing_metrics_read_as_zero() {
        let reg = Registry::new();
        let s = PolicySignals::scrape(&reg, None, Some("x"), 0);
        assert_eq!(s, PolicySignals::default());
    }
}
