//! Monotonic bump arena over a caller-provided region.
//!
//! Deserialized objects are constructed inside a protocol block "acting as
//! an arena buffer" (§IV): fields are allocated from a stack and never
//! individually freed, which is exactly what a bump arena provides. The
//! arena works on *offsets within the region*, so the same arithmetic is
//! valid on both sides of the mirrored buffers.

use crate::align_up;

/// A bump allocator handing out offsets within `[0, capacity)`.
///
/// The arena does not own any bytes: block construction writes through a
/// separate region handle while this struct tracks the high-water mark.
/// Keeping data and bookkeeping apart mirrors the external-state property
/// of [`crate::OffsetAllocator`].
#[derive(Debug, Clone)]
pub struct BumpArena {
    capacity: u64,
    cursor: u64,
}

impl BumpArena {
    /// Creates an arena over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            cursor: 0,
        }
    }

    /// Allocates `size` bytes aligned to `align`, returning the offset, or
    /// `None` when the arena is exhausted.
    #[inline]
    pub fn alloc(&mut self, size: u64, align: u64) -> Option<u64> {
        let off = align_up(self.cursor, align);
        let end = off.checked_add(size)?;
        if end > self.capacity {
            return None;
        }
        self.cursor = end;
        Some(off)
    }

    /// Bytes consumed so far (including alignment padding).
    #[inline]
    pub fn used(&self) -> u64 {
        self.cursor
    }

    /// Bytes remaining (ignoring future alignment padding).
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.capacity - self.cursor
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Resets the arena for reuse (block recycling).
    #[inline]
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Moves the cursor to `offset`, used when a caller lays out a prefix
    /// (e.g. a block preamble) manually.
    ///
    /// # Panics
    /// Panics if `offset` exceeds capacity or rewinds the cursor.
    pub fn advance_to(&mut self, offset: u64) {
        assert!(offset >= self.cursor, "arena cursor cannot rewind");
        assert!(offset <= self.capacity);
        self.cursor = offset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocates_sequentially() {
        let mut a = BumpArena::new(64);
        assert_eq!(a.alloc(8, 8), Some(0));
        assert_eq!(a.alloc(4, 4), Some(8));
        assert_eq!(a.alloc(8, 8), Some(16)); // 12 aligned up to 16
        assert_eq!(a.used(), 24);
    }

    #[test]
    fn exhaustion_returns_none_and_preserves_state() {
        let mut a = BumpArena::new(16);
        assert_eq!(a.alloc(10, 1), Some(0));
        assert_eq!(a.alloc(10, 1), None);
        assert_eq!(a.used(), 10);
        assert_eq!(a.alloc(6, 1), Some(10));
    }

    #[test]
    fn reset_reclaims_everything() {
        let mut a = BumpArena::new(32);
        a.alloc(32, 1).unwrap();
        assert_eq!(a.remaining(), 0);
        a.reset();
        assert_eq!(a.alloc(32, 1), Some(0));
    }

    #[test]
    fn advance_to_reserves_prefix() {
        let mut a = BumpArena::new(128);
        a.advance_to(24); // preamble
        assert_eq!(a.alloc(8, 8), Some(24));
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn advance_backwards_panics() {
        let mut a = BumpArena::new(128);
        a.alloc(64, 1).unwrap();
        a.advance_to(8);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Offsets are aligned, non-overlapping, monotonically placed,
            /// and never exceed capacity.
            #[test]
            fn bump_invariants(reqs in proptest::collection::vec(
                (1u64..200, 0u32..4), 1..100)) {
                let mut a = BumpArena::new(4096);
                let mut prev_end = 0u64;
                for (size, align_exp) in reqs {
                    let align = 1u64 << align_exp;
                    match a.alloc(size, align) {
                        Some(off) => {
                            prop_assert_eq!(off % align, 0);
                            prop_assert!(off >= prev_end);
                            prop_assert!(off + size <= a.capacity());
                            prev_end = off + size;
                            prop_assert_eq!(a.used(), prev_end);
                        }
                        None => {
                            // Exhaustion must not corrupt state.
                            prop_assert_eq!(a.used(), prev_end);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn overflow_guard() {
        let mut a = BumpArena::new(u64::MAX);
        a.advance_to(u64::MAX - 4);
        assert_eq!(a.alloc(u64::MAX, 1), None);
    }
}
