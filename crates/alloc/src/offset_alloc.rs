//! A free-list allocator over an abstract offset space.
//!
//! All bookkeeping lives in this structure — nothing is stored inside the
//! managed region, which may be remote memory the local CPU never touches.
//! This mirrors the property the paper leans on when it manages blocks in
//! the mirrored send/receive buffers: "Unlike standard allocators that store
//! bookkeeping information before the allocated data, the allocator state is
//! entirely stored externally" (§IV.A).
//!
//! Dynamic allocation (rather than a ring) is required because "RPCs can be
//! completed out-of-order on the server side: a future request can outlive a
//! past one" (§IV.A).

use crate::{align_up, is_aligned};
use std::collections::{BTreeMap, BTreeSet};

/// A successful allocation: `[offset, offset + size)` within the managed
/// space. The stored `size` is the *padded* size actually reserved, which
/// must be passed back to [`OffsetAllocator::free`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Allocation {
    /// Start offset, aligned as requested.
    pub offset: u64,
    /// Reserved length in bytes.
    pub size: u64,
}

/// Allocation failure reasons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// No free range can satisfy the size/alignment request right now.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Largest currently free contiguous range.
        largest_free: u64,
    },
    /// Zero-size allocations are rejected.
    ZeroSize,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of offset space: requested {requested} B, largest free run {largest_free} B"
            ),
            AllocError::ZeroSize => write!(f, "zero-size allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Occupancy statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocatorStats {
    /// Total managed bytes.
    pub capacity: u64,
    /// Bytes currently reserved.
    pub used: u64,
    /// Number of live allocations.
    pub live_allocations: u64,
    /// Number of free ranges (fragmentation indicator).
    pub free_ranges: u64,
    /// Largest single free range.
    pub largest_free: u64,
}

/// Best-fit free-list allocator with neighbor coalescing.
///
/// Two indexes are kept consistent: `by_offset` (offset → size) supports
/// coalescing on free; `by_size` (size, offset) supports best-fit lookup.
#[derive(Debug, Clone)]
pub struct OffsetAllocator {
    capacity: u64,
    by_offset: BTreeMap<u64, u64>,
    by_size: BTreeSet<(u64, u64)>,
    used: u64,
    live: u64,
}

impl OffsetAllocator {
    /// Creates an allocator managing `[0, capacity)`.
    pub fn new(capacity: u64) -> Self {
        let mut by_offset = BTreeMap::new();
        let mut by_size = BTreeSet::new();
        if capacity > 0 {
            by_offset.insert(0, capacity);
            by_size.insert((capacity, 0));
        }
        Self {
            capacity,
            by_offset,
            by_size,
            used: 0,
            live: 0,
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocates `size` bytes at a multiple of `align` (power of two).
    ///
    /// Best-fit among free ranges; alignment padding before the returned
    /// offset stays free (it is split back into the free list), so tight
    /// packing of mixed-alignment blocks does not leak space.
    pub fn alloc(&mut self, size: u64, align: u64) -> Result<Allocation, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        assert!(align.is_power_of_two(), "alignment must be a power of two");

        // Best fit: smallest free range that can hold the aligned request.
        // Ranges whose start needs padding may require extra room, so the
        // candidate scan continues until one actually fits.
        let mut chosen: Option<(u64, u64)> = None;
        for &(range_size, range_off) in self.by_size.range((size, 0)..) {
            let aligned = align_up(range_off, align);
            let pad = aligned - range_off;
            if range_size >= pad + size {
                chosen = Some((range_off, range_size));
                break;
            }
        }
        let (range_off, range_size) = chosen.ok_or(AllocError::OutOfMemory {
            requested: size,
            largest_free: self.largest_free(),
        })?;

        self.remove_free(range_off, range_size);
        let aligned = align_up(range_off, align);
        let pad = aligned - range_off;
        if pad > 0 {
            self.insert_free(range_off, pad);
        }
        let tail_off = aligned + size;
        let tail = range_off + range_size - tail_off;
        if tail > 0 {
            self.insert_free(tail_off, tail);
        }
        self.used += size;
        self.live += 1;
        debug_assert!(is_aligned(aligned, align));
        Ok(Allocation {
            offset: aligned,
            size,
        })
    }

    /// Returns `[offset, offset+size)` to the free list, coalescing with
    /// adjacent free ranges.
    ///
    /// # Panics
    /// Panics if the range overlaps a free range (double free) or exceeds
    /// capacity — both indicate protocol desynchronization, which must fail
    /// loudly.
    pub fn free(&mut self, alloc: Allocation) {
        let Allocation { offset, size } = alloc;
        assert!(size > 0, "free of zero-size allocation");
        assert!(
            offset + size <= self.capacity,
            "free beyond capacity: [{offset}, {})",
            offset + size
        );

        // Check against overlapping an existing free range.
        if let Some((&prev_off, &prev_size)) = self.by_offset.range(..=offset).next_back() {
            assert!(
                prev_off + prev_size <= offset,
                "double free / overlap with free range [{prev_off}, {})",
                prev_off + prev_size
            );
        }
        if let Some((&next_off, _)) = self.by_offset.range(offset..).next() {
            assert!(
                offset + size <= next_off,
                "free range overlaps next free range at {next_off}"
            );
        }

        let mut new_off = offset;
        let mut new_size = size;
        // Coalesce with predecessor.
        if let Some((&prev_off, &prev_size)) = self.by_offset.range(..offset).next_back() {
            if prev_off + prev_size == offset {
                self.remove_free(prev_off, prev_size);
                new_off = prev_off;
                new_size += prev_size;
            }
        }
        // Coalesce with successor.
        if let Some((&next_off, &next_size)) = self.by_offset.range(offset..).next() {
            if offset + size == next_off {
                self.remove_free(next_off, next_size);
                new_size += next_size;
            }
        }
        self.insert_free(new_off, new_size);
        self.used -= size;
        self.live -= 1;
    }

    /// Largest free contiguous range.
    pub fn largest_free(&self) -> u64 {
        self.by_size
            .iter()
            .next_back()
            .map(|&(s, _)| s)
            .unwrap_or(0)
    }

    /// Current occupancy statistics.
    pub fn stats(&self) -> AllocatorStats {
        AllocatorStats {
            capacity: self.capacity,
            used: self.used,
            live_allocations: self.live,
            free_ranges: self.by_offset.len() as u64,
            largest_free: self.largest_free(),
        }
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// True if nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn insert_free(&mut self, off: u64, size: u64) {
        let prev = self.by_offset.insert(off, size);
        debug_assert!(prev.is_none());
        let fresh = self.by_size.insert((size, off));
        debug_assert!(fresh);
    }

    fn remove_free(&mut self, off: u64, size: u64) {
        let removed = self.by_offset.remove(&off);
        debug_assert_eq!(removed, Some(size));
        let removed = self.by_size.remove(&(size, off));
        debug_assert!(removed);
    }

    /// Internal consistency check used by tests: free ranges are sorted,
    /// non-adjacent, in-bounds, and both indexes agree.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut prev_end: Option<u64> = None;
        let mut free_total = 0;
        for (&off, &size) in &self.by_offset {
            assert!(size > 0);
            assert!(off + size <= self.capacity);
            if let Some(end) = prev_end {
                assert!(
                    off > end,
                    "free ranges must not be adjacent (coalescing bug)"
                );
            }
            prev_end = Some(off + size);
            assert!(self.by_size.contains(&(size, off)));
            free_total += size;
        }
        assert_eq!(self.by_size.len(), self.by_offset.len());
        assert_eq!(free_total + self.used, self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_alloc_free_roundtrip() {
        let mut a = OffsetAllocator::new(1024);
        let x = a.alloc(100, 8).unwrap();
        assert_eq!(x.offset % 8, 0);
        let y = a.alloc(200, 8).unwrap();
        assert_ne!(x.offset, y.offset);
        a.free(x);
        a.free(y);
        assert!(a.is_empty());
        assert_eq!(a.largest_free(), 1024);
        a.check_invariants();
    }

    #[test]
    fn respects_alignment_with_padding() {
        let mut a = OffsetAllocator::new(4096);
        let _pad_breaker = a.alloc(10, 1).unwrap(); // offset 0..10
        let b = a.alloc(100, 1024).unwrap();
        assert_eq!(b.offset % 1024, 0);
        a.check_invariants();
        // Padding between 10 and 1024 must still be allocatable.
        let c = a.alloc(512, 2).unwrap();
        assert!(c.offset >= 10 && c.offset + 512 <= 1024, "c={c:?}");
        a.check_invariants();
    }

    #[test]
    fn out_of_memory_reports_largest_free() {
        let mut a = OffsetAllocator::new(256);
        let x = a.alloc(200, 1).unwrap();
        let err = a.alloc(100, 1).unwrap_err();
        match err {
            AllocError::OutOfMemory { largest_free, .. } => assert_eq!(largest_free, 56),
            other => panic!("unexpected: {other:?}"),
        }
        a.free(x);
        assert!(a.alloc(256, 1).is_ok());
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = OffsetAllocator::new(64);
        assert_eq!(a.alloc(0, 1).unwrap_err(), AllocError::ZeroSize);
    }

    #[test]
    fn coalescing_restores_full_range() {
        let mut a = OffsetAllocator::new(300);
        let x = a.alloc(100, 1).unwrap();
        let y = a.alloc(100, 1).unwrap();
        let z = a.alloc(100, 1).unwrap();
        // Free middle first: no coalesce yet.
        a.free(y);
        assert_eq!(a.stats().free_ranges, 1);
        a.free(x);
        a.free(z);
        assert_eq!(a.stats().free_ranges, 1);
        assert_eq!(a.largest_free(), 300);
        a.check_invariants();
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = OffsetAllocator::new(128);
        let x = a.alloc(64, 1).unwrap();
        a.free(x);
        a.free(x);
    }

    #[test]
    fn out_of_order_free_matches_paper_motivation() {
        // "a future request can outlive a past one": allocate a run of
        // blocks, free them in random-ish (reversed and interleaved) order.
        let mut a = OffsetAllocator::new(8192);
        let blocks: Vec<_> = (0..8).map(|_| a.alloc(1024, 1024).unwrap()).collect();
        // Free odd indexes newest-first (7, 5, 3, 1)…
        for b in blocks.iter().rev().step_by(2) {
            a.free(*b);
            a.check_invariants();
        }
        // …then even indexes newest-first (6, 4, 2, 0).
        for b in blocks.iter().step_by(2).rev() {
            a.free(*b);
            a.check_invariants();
        }
        assert!(a.is_empty(), "stats={:?}", a.stats());
        assert_eq!(a.largest_free(), 8192);
    }

    #[test]
    fn best_fit_prefers_tight_ranges() {
        let mut a = OffsetAllocator::new(1000);
        let x = a.alloc(100, 1).unwrap(); // [0,100)
        let y = a.alloc(500, 1).unwrap(); // [100,600)
        let _z = a.alloc(400, 1).unwrap(); // [600,1000)
        a.free(x); // 100-byte hole
        a.free(y); // 500-byte hole (not adjacent? x and y ARE adjacent)
                   // x and y coalesce into [0,600). Allocate 50: goes to [0,50).
        let w = a.alloc(50, 1).unwrap();
        assert_eq!(w.offset, 0);
        a.check_invariants();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random alloc/free interleavings: no overlap, alignment respected,
        /// full reclamation at the end.
        #[test]
        fn random_workload_invariants(ops in proptest::collection::vec((1u64..2000, 0usize..4, any::<bool>()), 1..200)) {
            let mut a = OffsetAllocator::new(1 << 16);
            let mut live: Vec<Allocation> = Vec::new();
            for (size, align_exp, do_free) in ops {
                let align = 1u64 << (align_exp * 3); // 1, 8, 64, 512
                if do_free && !live.is_empty() {
                    let idx = (size as usize) % live.len();
                    let victim = live.swap_remove(idx);
                    a.free(victim);
                } else if let Ok(alloc) = a.alloc(size, align) {
                    prop_assert!(alloc.offset % align == 0);
                    prop_assert!(alloc.offset + alloc.size <= a.capacity());
                    for other in &live {
                        let disjoint = alloc.offset + alloc.size <= other.offset
                            || other.offset + other.size <= alloc.offset;
                        prop_assert!(disjoint, "overlap: {alloc:?} vs {other:?}");
                    }
                    live.push(alloc);
                }
                a.check_invariants();
            }
            for alloc in live.drain(..) {
                a.free(alloc);
            }
            a.check_invariants();
            prop_assert!(a.is_empty());
            prop_assert_eq!(a.largest_free(), a.capacity());
        }
    }
}
