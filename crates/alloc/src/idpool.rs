//! Deterministic request-ID pool.
//!
//! §IV.D: "A unique ID is associated with each request … the request ID is
//! not sent explicitly to the server. We again take advantage of the
//! reliable connection to keep the IDs synchronized … The IDs are
//! deterministically allocated from a pool."
//!
//! Both the client and the server construct an [`IdPool`] with the same
//! capacity and replay the same *order* of frees-then-allocs per block, so
//! the pools assign identical IDs without any wire bytes. Determinism is
//! therefore a correctness property, not an optimization: the pool is a
//! FIFO so that an ID freed long ago is reused before a recent one,
//! maximizing the separation between reuse and any in-flight stragglers.

use std::collections::VecDeque;

/// A FIFO pool of `u16` IDs (the paper stores IDs on 2 bytes, allowing up
/// to 2¹⁶ concurrent requests).
#[derive(Debug, Clone)]
pub struct IdPool {
    free: VecDeque<u16>,
    capacity: u32,
    outstanding: u32,
}

impl IdPool {
    /// Creates a pool of `capacity` IDs, `0..capacity`, available in
    /// ascending order. `capacity` may be at most 2¹⁶.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity <= 1 << 16, "IDs are stored on 2 bytes");
        Self {
            free: (0..capacity).map(|i| i as u16).collect(),
            capacity,
            outstanding: 0,
        }
    }

    /// Allocates the next ID, or `None` if all IDs are outstanding.
    #[inline]
    pub fn alloc(&mut self) -> Option<u16> {
        let id = self.free.pop_front()?;
        self.outstanding += 1;
        Some(id)
    }

    /// Returns an ID to the pool.
    ///
    /// The caller (the protocol layer) is responsible for never freeing an
    /// ID twice; the pool checks this in debug builds only, since the
    /// protocol's ordering guarantees make it structurally impossible.
    #[inline]
    pub fn free(&mut self, id: u16) {
        debug_assert!(
            !self.free.contains(&id),
            "request ID {id} freed twice — protocol desynchronization"
        );
        debug_assert!((id as u32) < self.capacity);
        self.free.push_back(id);
        self.outstanding -= 1;
    }

    /// IDs currently allocated.
    #[inline]
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// IDs currently available.
    #[inline]
    pub fn available(&self) -> u32 {
        self.free.len() as u32
    }

    /// Total pool size.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocates_in_ascending_order_initially() {
        let mut p = IdPool::new(4);
        assert_eq!(p.alloc(), Some(0));
        assert_eq!(p.alloc(), Some(1));
        assert_eq!(p.alloc(), Some(2));
        assert_eq!(p.alloc(), Some(3));
        assert_eq!(p.alloc(), None);
    }

    #[test]
    fn fifo_recycling() {
        let mut p = IdPool::new(3);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        let _c = p.alloc().unwrap();
        p.free(b);
        p.free(a);
        // b was freed first, so it is reused first.
        assert_eq!(p.alloc(), Some(b));
        assert_eq!(p.alloc(), Some(a));
    }

    #[test]
    fn counts_track() {
        let mut p = IdPool::new(10);
        assert_eq!(p.available(), 10);
        let x = p.alloc().unwrap();
        assert_eq!(p.outstanding(), 1);
        assert_eq!(p.available(), 9);
        p.free(x);
        assert_eq!(p.outstanding(), 0);
        assert_eq!(p.available(), 10);
    }

    #[test]
    fn full_capacity_u16() {
        let mut p = IdPool::new(1 << 16);
        for expect in 0..(1u32 << 16) {
            assert_eq!(p.alloc(), Some(expect as u16));
        }
        assert_eq!(p.alloc(), None);
    }

    proptest! {
        /// Two pools replaying the same op sequence always agree — the
        /// determinism property the wire protocol depends on.
        #[test]
        fn replay_determinism(ops in proptest::collection::vec(any::<bool>(), 1..500)) {
            let mut a = IdPool::new(64);
            let mut b = IdPool::new(64);
            let mut live: Vec<u16> = Vec::new();
            for op in ops {
                if op || live.is_empty() {
                    let ia = a.alloc();
                    let ib = b.alloc();
                    prop_assert_eq!(ia, ib);
                    if let Some(id) = ia {
                        live.push(id);
                    }
                } else {
                    let id = live.remove(0);
                    a.free(id);
                    b.free(id);
                }
                prop_assert_eq!(a.outstanding(), b.outstanding());
            }
        }
    }
}
