//! Memory-management substrates for the RPC-over-RDMA protocol.
//!
//! The paper allocates protocol *blocks* out of pinned send buffers with the
//! Vulkan® Memory Allocator, chosen because it "permits the allocation of
//! memory by working on a virtual address space and working purely on
//! offsets instead of pointers" and because "the allocator state is entirely
//! stored externally … adapted to manage remote memory" (§IV.A).
//!
//! This crate provides from-scratch equivalents:
//!
//! * [`OffsetAllocator`] — a general-purpose free-list allocator over an
//!   abstract `[0, capacity)` offset space with full external bookkeeping,
//!   alignment support, and neighbor coalescing. Used to place blocks inside
//!   send buffers (which mirror remote receive buffers, so offsets are the
//!   shared currency).
//! * [`BumpArena`] — a monotonic arena over a byte slice for in-place object
//!   construction during deserialization (the paper's "arena buffer").
//! * [`IdPool`] — a deterministic FIFO ID pool. The protocol never transmits
//!   request IDs; both sides replay identical alloc/free sequences against
//!   identical pools and stay synchronized over the reliable connection
//!   (§IV.D).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bump;
mod idpool;
mod offset_alloc;

pub use bump::BumpArena;
pub use idpool::IdPool;
pub use offset_alloc::{AllocError, Allocation, AllocatorStats, OffsetAllocator};

/// Rounds `v` up to the next multiple of `align` (a power of two).
#[inline]
pub fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

/// Returns true if `v` is a multiple of `align` (a power of two).
#[inline]
pub fn is_aligned(v: u64, align: u64) -> bool {
    debug_assert!(align.is_power_of_two());
    v & (align - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 1024), 1024);
        assert_eq!(align_up(1024, 1024), 1024);
        assert_eq!(align_up(1025, 1024), 2048);
    }

    #[test]
    fn is_aligned_basics() {
        assert!(is_aligned(0, 16));
        assert!(is_aligned(32, 16));
        assert!(!is_aligned(33, 16));
    }
}
