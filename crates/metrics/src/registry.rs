//! Named metric registry and text exposition.

use crate::{Counter, Gauge, Histogram};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An ordered set of label name/value pairs identifying one time series
/// within a metric family.
pub type LabelSet = BTreeMap<String, String>;

/// The kind of a metric family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Bucketed histogram.
    Histogram,
}

/// A metric name was requested with a kind different from the kind it was
/// first registered with (e.g. `counter("x")` after `gauge("x")`).
///
/// Registration is idempotent only within one kind; silently handing out a
/// mismatched handle would corrupt the family, and panicking deep inside a
/// library component is hostile to embedders — the `try_*` accessors
/// surface this as a typed error instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KindMismatch {
    /// The metric family name.
    pub name: String,
    /// The kind the family was first registered with.
    pub existing: MetricKind,
    /// The kind this request asked for.
    pub requested: MetricKind,
}

impl std::fmt::Display for KindMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "metric {} already registered with a different kind ({:?} requested, {:?} registered)",
            self.name, self.requested, self.existing
        )
    }
}

impl std::error::Error for KindMismatch {}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A family of series sharing one metric name and help string.
pub struct MetricFamily {
    name: String,
    help: String,
    kind: MetricKind,
    series: BTreeMap<Vec<(String, String)>, Series>,
}

impl MetricFamily {
    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metric kind.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }
}

/// Label value that absorbs series beyond a label's cardinality cap.
///
/// When [`Registry::cap_label_cardinality`] limits a label (e.g. `tenant`)
/// to N distinct values, the N+1th and later values all register under
/// this value instead, so hostile or misconfigured clients cannot grow the
/// registry without bound.
pub const OVERFLOW_LABEL_VALUE: &str = "__other";

struct LabelCap {
    max: usize,
    seen: std::collections::BTreeSet<String>,
}

/// A threadsafe registry of metric families.
///
/// Registration is idempotent: asking for the same name + labels returns a
/// handle to the existing series, so library components can register their
/// instruments without coordinating.
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, MetricFamily>>,
    /// Per-label-name cardinality caps (see
    /// [`Registry::cap_label_cardinality`]).
    caps: RwLock<BTreeMap<String, LabelCap>>,
    /// Kind-mismatched registration attempts observed (self-observation:
    /// a scrape of a misbehaving embedder shows the count).
    kind_mismatches: std::sync::atomic::AtomicU64,
}

fn labels_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of distinct values the label `label` may take
    /// across every family in this registry. The first `max` distinct
    /// values each get their own series; later values collapse into
    /// [`OVERFLOW_LABEL_VALUE`], bounding registry growth regardless of
    /// how many tenants (or other unbounded identities) traffic carries.
    ///
    /// Reads ([`Registry::counter_value`], [`Registry::gauge_value`])
    /// apply the same mapping, so a value that was capped at registration
    /// reads back from the overflow series.
    pub fn cap_label_cardinality(&self, label: &str, max: usize) {
        self.caps.write().insert(
            label.to_string(),
            LabelCap {
                max,
                seen: std::collections::BTreeSet::new(),
            },
        );
    }

    /// Distinct values currently admitted under a capped label (None when
    /// the label is uncapped).
    pub fn label_cardinality(&self, label: &str) -> Option<usize> {
        self.caps.read().get(label).map(|c| c.seen.len())
    }

    /// Applies cardinality caps to a label set. `admit` controls whether
    /// unseen values may claim one of the remaining slots (registration)
    /// or only map through the existing table (reads).
    fn capped_key(&self, labels: &[(&str, &str)], admit: bool) -> Vec<(String, String)> {
        let mut key = labels_key(labels);
        {
            let caps = self.caps.read();
            if caps.is_empty() || !key.iter().any(|(k, _)| caps.contains_key(k)) {
                return key;
            }
        }
        let mut caps = self.caps.write();
        for (k, v) in key.iter_mut() {
            let Some(cap) = caps.get_mut(k.as_str()) else {
                continue;
            };
            if cap.seen.contains(v.as_str()) || v == OVERFLOW_LABEL_VALUE {
                continue;
            }
            if cap.seen.len() < cap.max {
                if admit {
                    cap.seen.insert(v.clone());
                }
            } else {
                *v = OVERFLOW_LABEL_VALUE.to_string();
            }
        }
        key
    }

    fn get_or_insert<T: Clone, F: FnOnce() -> Series, G: Fn(&Series) -> Option<T>>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: F,
        extract: G,
    ) -> Result<T, KindMismatch> {
        let key = self.capped_key(labels, true);
        let mut fams = self.families.write();
        let fam = fams
            .entry(name.to_string())
            .or_insert_with(|| MetricFamily {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                series: BTreeMap::new(),
            });
        if fam.kind != kind {
            self.kind_mismatches
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Err(KindMismatch {
                name: name.to_string(),
                existing: fam.kind,
                requested: kind,
            });
        }
        let series = fam.series.entry(key).or_insert_with(make);
        Ok(extract(series).expect("series kind always matches its family kind"))
    }

    /// Returns (registering if needed) a counter series, or a typed error
    /// when `name` already names a family of a different kind.
    pub fn try_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Counter, KindMismatch> {
        self.get_or_insert(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Series::Counter(Counter::new()),
            |s| match s {
                Series::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Returns (registering if needed) a gauge series, or a typed error
    /// when `name` already names a family of a different kind.
    pub fn try_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Gauge, KindMismatch> {
        self.get_or_insert(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Series::Gauge(Gauge::new()),
            |s| match s {
                Series::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Returns (registering if needed) a histogram series, or a typed
    /// error when `name` already names a family of a different kind.
    pub fn try_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Result<Histogram, KindMismatch> {
        self.get_or_insert(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Series::Histogram(Histogram::new(bounds)),
            |s| match s {
                Series::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Returns (registering if needed) a counter series.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind; use
    /// [`Registry::try_counter`] for a recoverable error.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.try_counter(name, help, labels).unwrap_or_else(|e| {
            panic!(
                "metric {} already registered with a different kind: {e}",
                e.name
            )
        })
    }

    /// Returns (registering if needed) a gauge series.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind; use
    /// [`Registry::try_gauge`] for a recoverable error.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.try_gauge(name, help, labels).unwrap_or_else(|e| {
            panic!(
                "metric {} already registered with a different kind: {e}",
                e.name
            )
        })
    }

    /// Returns (registering if needed) a histogram series.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind; use
    /// [`Registry::try_histogram`] for a recoverable error.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        self.try_histogram(name, help, labels, bounds)
            .unwrap_or_else(|e| {
                panic!(
                    "metric {} already registered with a different kind: {e}",
                    e.name
                )
            })
    }

    /// Kind-mismatched registration attempts observed so far.
    pub fn kind_mismatches(&self) -> u64 {
        self.kind_mismatches
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Reads the current value of a counter series, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = self.capped_key(labels, false);
        let fams = self.families.read();
        match fams.get(name)?.series.get(&key)? {
            Series::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Reads the current value of a gauge series, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let key = self.capped_key(labels, false);
        let fams = self.families.read();
        match fams.get(name)?.series.get(&key)? {
            Series::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// Sums a counter family across all label sets (aggregate-over-cores, as
    /// the paper reports its datapath metrics).
    pub fn counter_sum(&self, name: &str) -> u64 {
        let fams = self.families.read();
        fams.get(name)
            .map(|f| {
                f.series
                    .values()
                    .map(|s| match s {
                        Series::Counter(c) => c.get(),
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Sums a gauge family across all label sets (e.g. "how many
    /// connections currently have their breaker open").
    pub fn gauge_sum(&self, name: &str) -> i64 {
        let fams = self.families.read();
        fams.get(name)
            .map(|f| {
                f.series
                    .values()
                    .map(|s| match s {
                        Series::Gauge(g) => g.get(),
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Renders the Prometheus text exposition format.
    pub fn expose(&self) -> String {
        // Label values are quoted strings in the text format: backslash,
        // double-quote, and line-feed must be escaped or a value
        // containing them desynchronizes every parser reading the scrape
        // (Prometheus exposition format spec, "Comments, help text, and
        // type information" / label value escaping).
        fn escape_label_value(out: &mut String, v: &str) {
            for c in v.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
        }

        // HELP text escapes only backslash and line-feed (it is not
        // quoted, so a literal newline would terminate the comment early).
        fn escape_help(out: &mut String, v: &str) {
            for c in v.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
        }

        fn fmt_labels(out: &mut String, key: &[(String, String)], extra: Option<(&str, &str)>) {
            if key.is_empty() && extra.is_none() {
                return;
            }
            out.push('{');
            let mut first = true;
            for (k, v) in key {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"");
                escape_label_value(out, v);
                out.push('"');
                first = false;
            }
            if let Some((k, v)) = extra {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"");
                escape_label_value(out, v);
                out.push('"');
            }
            out.push('}');
        }

        let fams = self.families.read();
        let mut out = String::new();
        for fam in fams.values() {
            let kind = match fam.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let _ = write!(out, "# HELP {} ", fam.name);
            escape_help(&mut out, &fam.help);
            out.push('\n');
            let _ = writeln!(out, "# TYPE {} {}", fam.name, kind);
            for (key, series) in &fam.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&fam.name);
                        fmt_labels(&mut out, key, None);
                        let _ = writeln!(out, " {}", c.get());
                    }
                    Series::Gauge(g) => {
                        out.push_str(&fam.name);
                        fmt_labels(&mut out, key, None);
                        let _ = writeln!(out, " {}", g.get());
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, n) in snap.buckets.iter().enumerate() {
                            cumulative += n;
                            let le = if i < snap.bounds.len() {
                                format!("{}", snap.bounds[i])
                            } else {
                                "+Inf".to_string()
                            };
                            let _ = write!(out, "{}_bucket", fam.name);
                            fmt_labels(&mut out, key, Some(("le", &le)));
                            let _ = writeln!(out, " {cumulative}");
                        }
                        let _ = write!(out, "{}_sum", fam.name);
                        fmt_labels(&mut out, key, None);
                        let _ = writeln!(out, " {}", snap.sum);
                        let _ = write!(out, "{}_count", fam.name);
                        fmt_labels(&mut out, key, None);
                        let _ = writeln!(out, " {}", snap.count);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent_registration_shares_series() {
        let reg = Registry::new();
        let a = reg.counter("x", "x", &[("t", "1")]);
        let b = reg.counter("x", "x", &[("t", "1")]);
        a.inc();
        b.inc();
        assert_eq!(reg.counter_value("x", &[("t", "1")]), Some(2));
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        let a = reg.counter("x", "x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x", "x", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn counter_sum_aggregates_over_labels() {
        let reg = Registry::new();
        reg.counter("req", "r", &[("core", "0")]).inc_by(10);
        reg.counter("req", "r", &[("core", "1")]).inc_by(32);
        assert_eq!(reg.counter_sum("req"), 42);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        let _ = reg.counter("y", "y", &[]);
        let _ = reg.gauge("y", "y", &[]);
    }

    #[test]
    fn exposition_contains_histogram_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "latency", &[("q", "0")], &[1.0, 2.0]);
        h.observe(1.5);
        let text = reg.expose();
        assert!(text.contains("lat_bucket{q=\"0\",le=\"2\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{q=\"0\",le=\"+Inf\"} 1"));
    }

    #[test]
    fn missing_series_reads_none() {
        let reg = Registry::new();
        assert_eq!(reg.counter_value("nope", &[]), None);
        assert_eq!(reg.gauge_value("nope", &[]), None);
        assert_eq!(reg.counter_sum("nope"), 0);
    }

    #[test]
    fn label_values_are_escaped_in_exposition() {
        // A label value containing backslash, double-quote, AND newline
        // must round-trip through the text format with all three escaped.
        let reg = Registry::new();
        reg.counter("esc", "escaping test", &[("path", "a\\b\"c\nd")])
            .inc();
        let text = reg.expose();
        assert!(
            text.contains(r#"esc{path="a\\b\"c\nd"} 1"#),
            "escaped series line missing:\n{text}"
        );
        // The raw (unescaped) byte sequences must not appear inside the
        // quoted value: no literal newline, no bare quote.
        let series_line = text
            .lines()
            .find(|l| l.starts_with("esc{"))
            .expect("series line present");
        assert!(!series_line.contains("a\\b\"c"), "bare quote leaked");
        assert_eq!(
            text.lines().filter(|l| l.starts_with("esc")).count(),
            1,
            "newline in a label value split the series across lines:\n{text}"
        );
    }

    #[test]
    fn help_text_newlines_are_escaped() {
        let reg = Registry::new();
        reg.counter("h", "line one\nline two \\ done", &[]).inc();
        let text = reg.expose();
        assert!(
            text.contains("# HELP h line one\\nline two \\\\ done"),
            "{text}"
        );
    }

    #[test]
    fn kind_mismatch_is_a_typed_error() {
        let reg = Registry::new();
        let _ = reg.counter("y", "y", &[]);
        let err = reg.try_gauge("y", "y", &[]).unwrap_err();
        assert_eq!(err.name, "y");
        assert_eq!(err.existing, MetricKind::Counter);
        assert_eq!(err.requested, MetricKind::Gauge);
        assert!(err.to_string().contains("different kind"));
        // Histograms conflict the same way, and mismatches are recorded.
        assert!(reg.try_histogram("y", "y", &[], &[1.0]).is_err());
        assert_eq!(reg.kind_mismatches(), 2);
        // The family is unharmed: the original counter still works.
        reg.counter("y", "y", &[]).inc();
        assert_eq!(reg.counter_value("y", &[]), Some(1));
    }

    #[test]
    fn label_cardinality_cap_aggregates_overflow_into_other() {
        let reg = Registry::new();
        reg.cap_label_cardinality("tenant", 3);
        // First three tenants each get their own series.
        for t in ["a", "b", "c"] {
            reg.counter("sched_shed_total", "sheds", &[("tenant", t)])
                .inc();
        }
        assert_eq!(reg.label_cardinality("tenant"), Some(3));
        // Everything beyond the cap lands in the shared overflow series —
        // even a hostile stream of unique tenant names stays bounded.
        for i in 0..100 {
            let name = format!("mallory-{i}");
            reg.counter("sched_shed_total", "sheds", &[("tenant", &name)])
                .inc();
        }
        assert_eq!(reg.label_cardinality("tenant"), Some(3));
        assert_eq!(
            reg.counter_value("sched_shed_total", &[("tenant", OVERFLOW_LABEL_VALUE)]),
            Some(100)
        );
        // Reads of capped-out values route to the overflow series too.
        assert_eq!(
            reg.counter_value("sched_shed_total", &[("tenant", "mallory-7")]),
            Some(100)
        );
        // Admitted tenants are unaffected, series count is bounded at
        // cap + 1, and uncapped labels pass through untouched.
        assert_eq!(
            reg.counter_value("sched_shed_total", &[("tenant", "a")]),
            Some(1)
        );
        let text = reg.expose();
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("sched_shed_total{"))
                .count(),
            4,
            "{text}"
        );
        reg.counter("other_metric", "o", &[("conn", "c-99")]).inc();
        assert_eq!(
            reg.counter_value("other_metric", &[("conn", "c-99")]),
            Some(1)
        );
    }

    #[test]
    fn gauge_sum_aggregates_over_labels() {
        let reg = Registry::new();
        reg.gauge("open", "o", &[("conn", "a")]).set(1);
        reg.gauge("open", "o", &[("conn", "b")]).set(1);
        reg.gauge("open", "o", &[("conn", "c")]).set(0);
        assert_eq!(reg.gauge_sum("open"), 2);
        assert_eq!(reg.gauge_sum("absent"), 0);
    }
}
