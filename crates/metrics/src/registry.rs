//! Named metric registry and text exposition.

use crate::{Counter, Gauge, Histogram};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An ordered set of label name/value pairs identifying one time series
/// within a metric family.
pub type LabelSet = BTreeMap<String, String>;

/// The kind of a metric family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Bucketed histogram.
    Histogram,
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A family of series sharing one metric name and help string.
pub struct MetricFamily {
    name: String,
    help: String,
    kind: MetricKind,
    series: BTreeMap<Vec<(String, String)>, Series>,
}

impl MetricFamily {
    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metric kind.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }
}

/// A threadsafe registry of metric families.
///
/// Registration is idempotent: asking for the same name + labels returns a
/// handle to the existing series, so library components can register their
/// instruments without coordinating.
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, MetricFamily>>,
}

fn labels_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T: Clone, F: FnOnce() -> Series, G: Fn(&Series) -> Option<T>>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: F,
        extract: G,
    ) -> T {
        let key = labels_key(labels);
        let mut fams = self.families.write();
        let fam = fams
            .entry(name.to_string())
            .or_insert_with(|| MetricFamily {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                series: BTreeMap::new(),
            });
        assert_eq!(
            fam.kind, kind,
            "metric {name} already registered with a different kind"
        );
        let series = fam.series.entry(key).or_insert_with(make);
        extract(series).expect("metric kind mismatch within family")
    }

    /// Returns (registering if needed) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_insert(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Series::Counter(Counter::new()),
            |s| match s {
                Series::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Returns (registering if needed) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_insert(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Series::Gauge(Gauge::new()),
            |s| match s {
                Series::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Returns (registering if needed) a histogram series.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        self.get_or_insert(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Series::Histogram(Histogram::new(bounds)),
            |s| match s {
                Series::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Reads the current value of a counter series, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = labels_key(labels);
        let fams = self.families.read();
        match fams.get(name)?.series.get(&key)? {
            Series::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Reads the current value of a gauge series, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let key = labels_key(labels);
        let fams = self.families.read();
        match fams.get(name)?.series.get(&key)? {
            Series::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// Sums a counter family across all label sets (aggregate-over-cores, as
    /// the paper reports its datapath metrics).
    pub fn counter_sum(&self, name: &str) -> u64 {
        let fams = self.families.read();
        fams.get(name)
            .map(|f| {
                f.series
                    .values()
                    .map(|s| match s {
                        Series::Counter(c) => c.get(),
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Renders the Prometheus text exposition format.
    pub fn expose(&self) -> String {
        fn fmt_labels(out: &mut String, key: &[(String, String)], extra: Option<(&str, &str)>) {
            if key.is_empty() && extra.is_none() {
                return;
            }
            out.push('{');
            let mut first = true;
            for (k, v) in key {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"{v}\"");
                first = false;
            }
            if let Some((k, v)) = extra {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"{v}\"");
            }
            out.push('}');
        }

        let fams = self.families.read();
        let mut out = String::new();
        for fam in fams.values() {
            let kind = match fam.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
            let _ = writeln!(out, "# TYPE {} {}", fam.name, kind);
            for (key, series) in &fam.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&fam.name);
                        fmt_labels(&mut out, key, None);
                        let _ = writeln!(out, " {}", c.get());
                    }
                    Series::Gauge(g) => {
                        out.push_str(&fam.name);
                        fmt_labels(&mut out, key, None);
                        let _ = writeln!(out, " {}", g.get());
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, n) in snap.buckets.iter().enumerate() {
                            cumulative += n;
                            let le = if i < snap.bounds.len() {
                                format!("{}", snap.bounds[i])
                            } else {
                                "+Inf".to_string()
                            };
                            let _ = write!(out, "{}_bucket", fam.name);
                            fmt_labels(&mut out, key, Some(("le", &le)));
                            let _ = writeln!(out, " {cumulative}");
                        }
                        let _ = write!(out, "{}_sum", fam.name);
                        fmt_labels(&mut out, key, None);
                        let _ = writeln!(out, " {}", snap.sum);
                        let _ = write!(out, "{}_count", fam.name);
                        fmt_labels(&mut out, key, None);
                        let _ = writeln!(out, " {}", snap.count);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent_registration_shares_series() {
        let reg = Registry::new();
        let a = reg.counter("x", "x", &[("t", "1")]);
        let b = reg.counter("x", "x", &[("t", "1")]);
        a.inc();
        b.inc();
        assert_eq!(reg.counter_value("x", &[("t", "1")]), Some(2));
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        let a = reg.counter("x", "x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x", "x", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn counter_sum_aggregates_over_labels() {
        let reg = Registry::new();
        reg.counter("req", "r", &[("core", "0")]).inc_by(10);
        reg.counter("req", "r", &[("core", "1")]).inc_by(32);
        assert_eq!(reg.counter_sum("req"), 42);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        let _ = reg.counter("y", "y", &[]);
        let _ = reg.gauge("y", "y", &[]);
    }

    #[test]
    fn exposition_contains_histogram_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "latency", &[("q", "0")], &[1.0, 2.0]);
        h.observe(1.5);
        let text = reg.expose();
        assert!(text.contains("lat_bucket{q=\"0\",le=\"2\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{q=\"0\",le=\"+Inf\"} 1"));
    }

    #[test]
    fn missing_series_reads_none() {
        let reg = Registry::new();
        assert_eq!(reg.counter_value("nope", &[]), None);
        assert_eq!(reg.gauge_value("nope", &[]), None);
        assert_eq!(reg.counter_sum("nope"), 0);
    }
}
