//! Cumulative histograms with fixed bucket boundaries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default latency-oriented buckets, in nanoseconds (16 ns .. ~67 ms,
/// powers of four). Chosen to straddle both single-message deserialization
/// times (tens of ns) and full-datapath round trips (µs–ms).
pub const DEFAULT_BUCKETS: &[f64] = &[
    16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
    16777216.0, 67108864.0,
];

struct Inner {
    bounds: Vec<f64>,
    /// One cumulative-style slot per bound plus the +Inf slot at the end.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum stored as f64 bit pattern, updated by CAS loop.
    sum_bits: AtomicU64,
}

/// A histogram of `f64` observations.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

/// A point-in-time copy of a histogram's state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; the final entry is
    /// the +Inf bucket.
    pub buckets: Vec<u64>,
    /// Total observation count.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing finite bucket
    /// upper bounds. A +Inf bucket is appended implicitly.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(Inner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        // Bucket index by binary search: first bound >= v, else +Inf slot.
        let idx = self
            .inner
            .bounds
            .partition_point(|&b| b < v)
            .min(self.inner.bounds.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Captures a consistent-enough snapshot for reporting. Individual slots
    /// are read with relaxed ordering; for offline analysis after a quiesce
    /// this is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Approximate quantile from the bucketed data (linear interpolation
    /// within the winning bucket, Prometheus-style).
    pub fn quantile(&self, q: f64) -> f64 {
        let snap = self.snapshot();
        snap.quantile(q)
    }
}

impl HistogramSnapshot {
    /// Approximate quantile `q` in `[0, 1]` using linear interpolation
    /// within the containing bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let next = seen + n;
            if (next as f64) >= rank && n > 0 {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // +Inf bucket: report its lower bound.
                    return lo;
                };
                let frac = (rank - seen as f64) / n as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            seen = next;
        }
        *self.bounds.last().unwrap()
    }

    /// Mean of all observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_fill_correctly() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(0.5);
        h.observe(1.0); // boundary counts into the <=1.0 bucket
        h.observe(5.0);
        h.observe(50.0);
        h.observe(5000.0); // +Inf
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 5056.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_sane() {
        let h = Histogram::new(&[10.0, 20.0, 30.0]);
        for _ in 0..100 {
            h.observe(15.0);
        }
        let p50 = h.quantile(0.5);
        assert!(p50 > 10.0 && p50 <= 20.0, "p50={p50}");
    }

    #[test]
    fn mean_matches() {
        let h = Histogram::new(DEFAULT_BUCKETS);
        h.observe(10.0);
        h.observe(30.0);
        assert!((h.snapshot().mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::new(&[5.0, 1.0]);
    }

    #[test]
    fn empty_quantile_is_nan() {
        let h = Histogram::new(&[1.0]);
        assert!(h.quantile(0.5).is_nan());
    }
}
