//! Monotonic counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// Cloning a `Counter` yields a handle to the same underlying value, so the
/// datapath can hold a cheap clone while the [`crate::Registry`] retains the
/// canonical instance for exposition.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn inc_by(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero. Prometheus counters never decrease in production;
    /// this is provided for test isolation and benchmark warmup discard.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_up() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.inc_by(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn clones_share_state() {
        let c = Counter::new();
        let d = c.clone();
        c.inc_by(5);
        d.inc_by(2);
        assert_eq!(c.get(), 7);
        assert_eq!(d.get(), 7);
    }

    #[test]
    fn reset_zeroes() {
        let c = Counter::new();
        c.inc_by(123);
        c.reset();
        assert_eq!(c.get(), 0);
    }
}
