//! The monitoring process: instant rate of increase and stability waiting.
//!
//! The paper (§VI, "RPC Datapath") describes a monitoring process that
//! scrapes the Prometheus metrics, computes the per-second increase rate
//! from "the last two data points of each metric" (the *instant rate of
//! increase*, `irate` in PromQL), and "will wait until the RPS rate is
//! stable (within 1%), which takes around 20 seconds, before collecting the
//! final results".
//!
//! [`Monitor`] reproduces this estimator over an injectable clock so that
//! both wall-clock runs and discrete-event-simulated runs can use it.

use crate::Counter;

/// One (time, value) observation of a counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateSample {
    /// Sample timestamp in nanoseconds (wall or virtual).
    pub t_ns: u64,
    /// Counter value at that time.
    pub value: u64,
}

/// Configuration for stability detection.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Relative tolerance between consecutive instant rates to count as
    /// stable. The paper uses 1%.
    pub tolerance: f64,
    /// Number of consecutive in-tolerance rates required.
    pub required_stable: usize,
    /// Maximum samples before giving up and reporting the latest rate.
    pub max_samples: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            tolerance: 0.01,
            required_stable: 3,
            max_samples: 1000,
        }
    }
}

/// Result of a stability wait.
#[derive(Clone, Copy, Debug)]
pub struct StabilityReport {
    /// Final instant rate (units per second).
    pub rate_per_sec: f64,
    /// Whether the tolerance criterion was met (vs. hitting `max_samples`).
    pub stable: bool,
    /// Number of samples consumed.
    pub samples: usize,
}

/// Computes instant rates from successive counter samples and detects
/// stability.
#[derive(Debug)]
pub struct Monitor {
    cfg: MonitorConfig,
    last: Option<RateSample>,
    last_rate: Option<f64>,
    stable_run: usize,
    samples: usize,
    resets: usize,
}

impl Monitor {
    /// Creates a monitor with the given configuration.
    pub fn new(cfg: MonitorConfig) -> Self {
        Self {
            cfg,
            last: None,
            last_rate: None,
            stable_run: 0,
            samples: 0,
            resets: 0,
        }
    }

    /// Feeds one sample; returns the instant rate once two samples exist.
    ///
    /// The instant rate of increase uses only the last two data points:
    /// `(vᵢ - vᵢ₋₁) / (tᵢ - tᵢ₋₁)`, scaled to per-second.
    ///
    /// A *decrease* in value is a counter reset (a reconnect replaced the
    /// per-connection counter, or a warmup discard zeroed it), not a
    /// negative rate: the sample re-anchors the estimator — no rate is
    /// produced, the stability run restarts, and the previous rate is
    /// forgotten so the next genuine rate is not compared against a
    /// pre-reset one.
    pub fn push(&mut self, sample: RateSample) -> Option<f64> {
        self.samples += 1;
        if let Some(prev) = self.last {
            if sample.value < prev.value {
                self.resets += 1;
                self.stable_run = 0;
                self.last_rate = None;
                self.last = Some(sample);
                return None;
            }
        }
        let rate = match self.last {
            Some(prev) if sample.t_ns > prev.t_ns => {
                let dv = (sample.value - prev.value) as f64;
                let dt = (sample.t_ns - prev.t_ns) as f64 / 1e9;
                Some(dv / dt)
            }
            _ => None,
        };
        if let (Some(r), Some(prev_r)) = (rate, self.last_rate) {
            let denom = prev_r.abs().max(f64::MIN_POSITIVE);
            if (r - prev_r).abs() / denom <= self.cfg.tolerance {
                self.stable_run += 1;
            } else {
                self.stable_run = 0;
            }
        }
        self.last = Some(sample);
        if let Some(r) = rate {
            self.last_rate = Some(r);
        }
        rate
    }

    /// Whether the stability criterion has been met.
    pub fn is_stable(&self) -> bool {
        self.stable_run >= self.cfg.required_stable
    }

    /// Counter resets (value decreases) absorbed so far.
    pub fn resets(&self) -> usize {
        self.resets
    }

    /// Whether sampling should stop (stable, or budget exhausted).
    pub fn done(&self) -> bool {
        self.is_stable() || self.samples >= self.cfg.max_samples
    }

    /// Final report.
    pub fn report(&self) -> StabilityReport {
        StabilityReport {
            rate_per_sec: self.last_rate.unwrap_or(0.0),
            stable: self.is_stable(),
            samples: self.samples,
        }
    }

    /// Convenience driver: samples `counter` via `clock` (a closure
    /// returning now-ns) every `interval_ns` of *closure-advanced* time,
    /// invoking `wait` to advance time, until stable.
    pub fn run_until_stable<C, W>(
        counter: &Counter,
        cfg: MonitorConfig,
        mut clock: C,
        mut wait: W,
        interval_ns: u64,
    ) -> StabilityReport
    where
        C: FnMut() -> u64,
        W: FnMut(u64),
    {
        let mut mon = Monitor::new(cfg);
        while !mon.done() {
            wait(interval_ns);
            mon.push(RateSample {
                t_ns: clock(),
                value: counter.get(),
            });
        }
        mon.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ms: u64, v: u64) -> RateSample {
        RateSample {
            t_ns: t_ms * 1_000_000,
            value: v,
        }
    }

    #[test]
    fn instant_rate_uses_last_two_points() {
        let mut m = Monitor::new(MonitorConfig::default());
        assert_eq!(m.push(sample(0, 0)), None);
        let r = m.push(sample(1000, 5000)).unwrap();
        assert!((r - 5000.0).abs() < 1e-9);
        // A burst only affects the latest window.
        let r2 = m.push(sample(2000, 15000)).unwrap();
        assert!((r2 - 10000.0).abs() < 1e-9);
    }

    #[test]
    fn detects_stability_within_tolerance() {
        let mut m = Monitor::new(MonitorConfig {
            tolerance: 0.01,
            required_stable: 3,
            max_samples: 100,
        });
        // Ramp up, then plateau at 1000/s.
        let mut v = 0;
        for (i, rate) in [100u64, 500, 900, 1000, 1000, 1001, 999, 1000]
            .iter()
            .enumerate()
        {
            v += rate;
            m.push(sample((i as u64 + 1) * 1000, v));
        }
        assert!(m.is_stable());
        let rep = m.report();
        assert!(rep.stable);
        assert!((rep.rate_per_sec - 1000.0).abs() / 1000.0 < 0.02);
    }

    #[test]
    fn gives_up_after_max_samples() {
        let mut m = Monitor::new(MonitorConfig {
            tolerance: 0.0001,
            required_stable: 5,
            max_samples: 4,
        });
        let mut v = 0;
        let mut i = 0;
        while !m.done() {
            i += 1;
            v += i * 100; // always accelerating, never stable
            m.push(sample(i * 1000, v));
        }
        let rep = m.report();
        assert!(!rep.stable);
        assert_eq!(rep.samples, 4);
    }

    #[test]
    fn run_until_stable_with_virtual_clock() {
        let c = Counter::new();
        let now = std::cell::Cell::new(0u64);
        let rep = Monitor::run_until_stable(
            &c,
            MonitorConfig::default(),
            || now.get(),
            |dt| {
                now.set(now.get() + dt);
                // Simulated workload: 2 requests per microsecond.
                c.inc_by(dt / 500);
            },
            1_000_000,
        );
        assert!(rep.stable);
        assert!((rep.rate_per_sec - 2_000_000.0).abs() / 2e6 < 0.02);
    }

    #[test]
    fn counter_reset_yields_no_rate_not_underflow() {
        // A counter reset (reconnect replay, warmup discard) must not
        // wrap the rate negative/huge, and must not masquerade as a real
        // 0/s measurement: the sample re-anchors and produces no rate.
        let mut m = Monitor::new(MonitorConfig::default());
        m.push(sample(0, 10_000));
        assert_eq!(m.push(sample(1000, 50)), None);
        assert_eq!(m.resets(), 1);
        // The next sample rates against the post-reset anchor.
        let r = m.push(sample(2000, 1050)).unwrap();
        assert!((r - 1000.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn counter_reset_mid_run_does_not_fake_stability() {
        // Steady 1000/s, then the connection reconnects and its counter
        // restarts from zero mid-run. Without reset detection the
        // saturating delta reads 0/s and — compared against another 0/s
        // from a second reset — could count toward the stability run. The
        // verdict right after a reset must NOT be "stable".
        let mut m = Monitor::new(MonitorConfig {
            tolerance: 0.01,
            required_stable: 2,
            max_samples: 100,
        });
        m.push(sample(0, 0));
        m.push(sample(1000, 1000)); // 1000/s
        m.push(sample(2000, 2000)); // 1000/s -> stable_run = 1
        m.push(sample(3000, 5)); // reset: counter restarted
        assert!(!m.is_stable(), "reset must clear the stability run");
        // One in-tolerance pair after the reset is not enough either:
        // the first post-reset rate has no valid predecessor.
        m.push(sample(4000, 1005)); // 1000/s, compared against nothing
        assert!(!m.is_stable());
        m.push(sample(5000, 2005)); // 1000/s
        m.push(sample(6000, 3005)); // 1000/s -> stable_run = 2
        assert!(m.is_stable(), "post-reset rates re-converge");
        assert_eq!(m.resets(), 1);
    }

    #[test]
    fn repeated_resets_never_report_stable() {
        // A counter that resets every window (pathological reconnect
        // churn) produces no two comparable rates at all — the monitor
        // must run to its sample budget rather than return a bogus
        // "stable at 0/s" verdict.
        let mut m = Monitor::new(MonitorConfig {
            tolerance: 0.01,
            required_stable: 2,
            max_samples: 10,
        });
        let mut i = 0u64;
        while !m.done() {
            i += 1;
            // Sawtooth: climbs within the window, resets below the
            // previous sample every time.
            m.push(sample(i * 1000, 10 + (i % 2) * 5));
        }
        let rep = m.report();
        assert!(!rep.stable, "{rep:?}");
        assert_eq!(rep.samples, 10);
        assert!(m.resets() >= 4);
    }

    #[test]
    fn zero_elapsed_time_yields_none_and_preserves_state() {
        // Two scrapes landing on the same timestamp would divide by zero;
        // the sample must be absorbed without producing a rate, and the
        // next well-spaced sample must compute against the *latest* point,
        // not the stale one.
        let mut m = Monitor::new(MonitorConfig::default());
        m.push(sample(1000, 1000));
        assert_eq!(m.push(sample(1000, 2000)), None);
        // 1 s later, +1000 over the zero-elapsed sample's value.
        let r = m.push(sample(2000, 3000)).unwrap();
        assert!((r - 1000.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn never_moving_counter_converges_to_stable_zero_rate() {
        // A dead counter produces a 0/s instant rate every window; equal
        // zero rates are within any tolerance (the comparison guards the
        // zero denominator), so the monitor converges instead of spinning
        // until max_samples.
        let mut m = Monitor::new(MonitorConfig {
            tolerance: 0.01,
            required_stable: 3,
            max_samples: 100,
        });
        for i in 0..6 {
            m.push(sample((i + 1) * 1000, 42));
        }
        let rep = m.report();
        assert!(rep.stable, "{rep:?}");
        assert_eq!(rep.rate_per_sec, 0.0);
        assert!(rep.samples < 100);
    }

    #[test]
    fn tolerance_boundary_counts_as_stable() {
        // Consecutive rates differing by *exactly* the tolerance are
        // stable (<=, not <): 1000/s then 1010/s at 1% tolerance.
        let mut m = Monitor::new(MonitorConfig {
            tolerance: 0.01,
            required_stable: 1,
            max_samples: 100,
        });
        m.push(sample(0, 0));
        m.push(sample(1000, 1000)); // 1000/s
        m.push(sample(2000, 2010)); // 1010/s: drift / prev = exactly 0.01
        assert!(m.is_stable());
        // One part in a million past the boundary is not stable.
        let mut m = Monitor::new(MonitorConfig {
            tolerance: 0.01,
            required_stable: 1,
            max_samples: 100,
        });
        m.push(sample(0, 0));
        m.push(sample(1_000_000, 1_000_000)); // 1000/s over 1000 s
        m.push(sample(2_000_000, 2_010_001)); // 1010.001/s: drift 0.010001
        assert!(!m.is_stable());
    }

    #[test]
    fn non_monotonic_time_is_ignored() {
        let mut m = Monitor::new(MonitorConfig::default());
        m.push(sample(10, 100));
        assert_eq!(m.push(sample(10, 200)), None);
        assert_eq!(m.push(sample(5, 300)), None);
    }
}
