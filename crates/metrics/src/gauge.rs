//! Gauges: values that can go up and down.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// An integer gauge.
///
/// Used for instantaneous quantities such as in-flight requests, available
/// credits, or bytes currently allocated in a send buffer.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn can_go_negative() {
        let g = Gauge::new();
        g.sub(4);
        assert_eq!(g.get(), -4);
    }
}
