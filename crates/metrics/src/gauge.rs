//! Gauges: values that can go up and down.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// An integer gauge.
///
/// Used for instantaneous quantities such as in-flight requests, available
/// credits, or bytes currently allocated in a send buffer.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    ///
    /// A single atomic `fetch_max`, so concurrent writers cannot lose a
    /// peak: whatever interleaving occurs, the gauge ends at the largest
    /// value any writer observed. Used for occupancy peaks (credits in
    /// use, in-flight requests) that would otherwise vanish between
    /// scrapes of the instantaneous gauge.
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn can_go_negative() {
        let g = Gauge::new();
        g.sub(4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn set_max_only_raises() {
        let g = Gauge::new();
        g.set_max(10);
        assert_eq!(g.get(), 10);
        g.set_max(3);
        assert_eq!(g.get(), 10, "lower value must not overwrite the peak");
        g.set_max(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn set_max_race_free_across_threads() {
        // Many writers racing distinct values: the final gauge value must
        // be exactly the global maximum — a lost update would leave it
        // lower. fetch_max makes this a single-instruction invariant.
        let g = Gauge::new();
        let mut handles = Vec::new();
        for t in 0..8i64 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000i64 {
                    g.set_max(t * 10_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 7 * 10_000 + 9_999);
    }
}
