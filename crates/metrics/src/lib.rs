//! Prometheus-style in-process metrics.
//!
//! The paper instruments the RPC-over-RDMA library with a Prometheus client
//! "for a small fraction of the performance cost (around 5%)" and scrapes the
//! metrics with a monitoring process that waits until the request rate is
//! stable within 1% before collecting final results (§VI, "RPC Datapath").
//!
//! This crate reproduces that discipline:
//!
//! * [`Registry`] holds named metrics ([`Counter`], [`Gauge`],
//!   [`Histogram`]) addressed by name plus label pairs.
//! * [`expose`](Registry::expose) renders the Prometheus text exposition
//!   format.
//! * [`Monitor`] samples counters over (virtual or wall-clock) time, computes
//!   the *instant rate of increase* from the last two data points — exactly
//!   the paper's `irate`-style estimator — and reports stability once
//!   consecutive rates agree within a configurable tolerance.
//!
//! All hot-path operations are single atomic instructions so that
//! instrumentation can stay enabled inside pollers.

#![warn(missing_docs)]

mod counter;
mod gauge;
mod histogram;
mod monitor;
mod registry;
mod sliding;
mod slo;

pub use counter::Counter;
pub use gauge::Gauge;
pub use histogram::{Histogram, HistogramSnapshot, DEFAULT_BUCKETS};
pub use monitor::{Monitor, MonitorConfig, RateSample, StabilityReport};
pub use registry::{
    KindMismatch, LabelSet, MetricFamily, MetricKind, Registry, OVERFLOW_LABEL_VALUE,
};
pub use sliding::{SlidingConfig, SlidingHistogram};
pub use slo::{SloSpec, SloStatus, SloTracker};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn end_to_end_registry_exposition() {
        let reg = Registry::new();
        let c = reg.counter(
            "rpc_requests_total",
            "Total RPC requests",
            &[("side", "server")],
        );
        c.inc_by(41);
        c.inc();
        let g = reg.gauge("inflight", "In-flight requests", &[]);
        g.set(7);
        let h = reg.histogram("latency_ns", "Request latency", &[], DEFAULT_BUCKETS);
        h.observe(12.0);
        h.observe(250.0);

        let text = reg.expose();
        assert!(text.contains("# TYPE rpc_requests_total counter"));
        assert!(text.contains("rpc_requests_total{side=\"server\"} 42"));
        assert!(text.contains("inflight 7"));
        assert!(text.contains("latency_ns_count 2"));
    }

    #[test]
    fn metrics_shared_across_threads() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("hits", "hits", &[]);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
