//! Windowed SLO tracking: per-stage latency objectives evaluated over a
//! sliding window, with burn-rate and violation exposition.
//!
//! An [`SloTracker`] holds a set of objectives of the form "`stage` p`q`
//! stays under `threshold_ns`" (e.g. *deserialize p99 < 5 µs*, *end-to-end
//! p99 < 200 µs*). Each objective owns a [`SlidingHistogram`]; stage
//! latencies stream in (typically from sampled trace spans), and
//! [`SloTracker::evaluate`] renders the verdicts:
//!
//! * `slo_burn_rate{slo}` — a gauge, in **milli-burn** units: the observed
//!   bad-request fraction divided by the error budget, ×1000. A value of
//!   `1000` means the budget is being consumed exactly as fast as it
//!   accrues; above that, the objective is on course to be violated.
//! * `slo_violations_total{slo}` — a counter of evaluations at which the
//!   windowed quantile actually exceeded the objective.
//!
//! The tracker also carries windowed counter *ratios* ([`WindowedRatio`])
//! for dimensionless health signals like the PCIe amplification factor
//! (DMA bytes moved per wire byte accepted), exposed the same
//! milli-scaled way (`{name}_milli`).

use crate::sliding::{SlidingConfig, SlidingHistogram};
use crate::{Counter, Gauge, Registry};
use parking_lot::RwLock;
use std::sync::Arc;

/// One latency objective over a sliding window.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Objective name (the `slo` label value), e.g. `deserialize_p99`.
    pub name: String,
    /// Stage whose latencies feed this objective (matched against
    /// [`SloTracker::observe_stage`] calls), e.g. `deserialize`.
    pub stage: String,
    /// Quantile in `[0, 1]` the objective constrains (0.99 = p99).
    pub quantile: f64,
    /// Latency threshold in nanoseconds the quantile must stay under.
    pub threshold_ns: f64,
    /// Error budget: tolerated fraction of observations over the
    /// threshold (Google-SRE style; 0.01 = 1%).
    pub error_budget: f64,
}

impl SloSpec {
    /// A p99-under-`threshold_ns` objective with a 1% error budget.
    pub fn p99(name: &str, stage: &str, threshold_ns: f64) -> Self {
        Self {
            name: name.to_string(),
            stage: stage.to_string(),
            quantile: 0.99,
            threshold_ns,
            error_budget: 0.01,
        }
    }
}

/// Point-in-time verdict for one objective.
#[derive(Clone, Debug)]
pub struct SloStatus {
    /// Objective name.
    pub name: String,
    /// Windowed quantile value (NaN when the window is empty).
    pub quantile_ns: f64,
    /// The threshold it is held against.
    pub threshold_ns: f64,
    /// Fraction of windowed observations over the threshold.
    pub bad_fraction: f64,
    /// `bad_fraction / error_budget` (1.0 = burning exactly at budget).
    pub burn_rate: f64,
    /// Whether the windowed quantile currently exceeds the objective.
    pub violated: bool,
    /// Observations inside the window.
    pub window_count: u64,
}

struct SloEntry {
    spec: SloSpec,
    hist: SlidingHistogram,
    burn: Gauge,
    violations: Counter,
}

struct RatioEntry {
    name: String,
    num: Counter,
    den: Counter,
    gauge: Gauge,
    /// (t_ns, num, den) samples bounding the window, oldest first.
    samples: parking_lot::Mutex<std::collections::VecDeque<(u64, u64, u64)>>,
    window_ns: u64,
    windows: usize,
}

/// Windowed SLO evaluation over stage latencies and counter ratios.
///
/// Thread-safe and cheap to clone; observation is lock-light (one RwLock
/// read + the sliding histogram's slot lock).
#[derive(Clone)]
pub struct SloTracker {
    inner: Arc<Inner>,
}

struct Inner {
    registry: Arc<Registry>,
    window: SlidingConfig,
    slos: RwLock<Vec<Arc<SloEntry>>>,
    ratios: RwLock<Vec<Arc<RatioEntry>>>,
}

impl SloTracker {
    /// Creates a tracker exporting into `registry`, with every objective
    /// sharing the `window` epoch geometry.
    pub fn new(registry: Arc<Registry>, window: SlidingConfig) -> Self {
        Self {
            inner: Arc::new(Inner {
                registry,
                window,
                slos: RwLock::new(Vec::new()),
                ratios: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Registers one latency objective.
    pub fn add(&self, spec: SloSpec) {
        let burn = self.inner.registry.gauge(
            "slo_burn_rate",
            "SLO burn rate in milli units (1000 = consuming error budget exactly at rate)",
            &[("slo", &spec.name)],
        );
        let violations = self.inner.registry.counter(
            "slo_violations_total",
            "Evaluations at which the windowed quantile exceeded its objective",
            &[("slo", &spec.name)],
        );
        let entry = Arc::new(SloEntry {
            hist: SlidingHistogram::new(self.inner.window.clone()),
            spec,
            burn,
            violations,
        });
        self.inner.slos.write().push(entry);
    }

    /// Registers a windowed counter ratio gauge `{name}_milli` =
    /// `Δnum/Δden × 1000` over the tracker's window. Used for the PCIe
    /// amplification factor (DMA bytes per accepted wire byte).
    pub fn add_ratio(&self, name: &str, num: Counter, den: Counter) {
        let gauge = self.inner.registry.gauge(
            &format!("{name}_milli"),
            "Windowed counter ratio in milli units",
            &[],
        );
        let entry = Arc::new(RatioEntry {
            name: name.to_string(),
            num,
            den,
            gauge,
            samples: parking_lot::Mutex::new(std::collections::VecDeque::new()),
            window_ns: self.inner.window.window_ns,
            windows: self.inner.window.windows,
        });
        self.inner.ratios.write().push(entry);
    }

    /// Streams one stage latency into every objective watching `stage`.
    pub fn observe_stage(&self, stage: &str, now_ns: u64, duration_ns: f64) {
        let slos = self.inner.slos.read();
        for e in slos.iter() {
            if e.spec.stage == stage {
                e.hist.observe(now_ns, duration_ns);
            }
        }
    }

    /// True when any registered objective watches `stage` (lets emitters
    /// skip the observation entirely).
    pub fn watches(&self, stage: &str) -> bool {
        self.inner.slos.read().iter().any(|e| e.spec.stage == stage)
    }

    /// Evaluates every objective and ratio at `now_ns`, updating the
    /// exported gauges/counters and returning the verdicts.
    pub fn evaluate(&self, now_ns: u64) -> Vec<SloStatus> {
        let mut out = Vec::new();
        for e in self.inner.slos.read().iter() {
            let snap = e.hist.window_snapshot(now_ns);
            let q = snap.quantile(e.spec.quantile);
            // Bad fraction from the bucket data: observations in buckets
            // strictly above the one containing the threshold. (Bucketed,
            // so conservative to one bucket's resolution.)
            let bad = if snap.count == 0 {
                0.0
            } else {
                let idx = snap
                    .bounds
                    .partition_point(|&b| b < e.spec.threshold_ns)
                    .min(snap.bounds.len());
                let over: u64 = snap.buckets.iter().skip(idx + 1).sum();
                over as f64 / snap.count as f64
            };
            let burn = bad / e.spec.error_budget.max(f64::MIN_POSITIVE);
            let violated = snap.count > 0 && q > e.spec.threshold_ns;
            e.burn.set((burn * 1000.0) as i64);
            if violated {
                e.violations.inc();
            }
            out.push(SloStatus {
                name: e.spec.name.clone(),
                quantile_ns: q,
                threshold_ns: e.spec.threshold_ns,
                bad_fraction: bad,
                burn_rate: burn,
                violated,
                window_count: snap.count,
            });
        }
        for r in self.inner.ratios.read().iter() {
            let (num, den) = (r.num.get(), r.den.get());
            let mut samples = r.samples.lock();
            samples.push_back((now_ns, num, den));
            let horizon = now_ns.saturating_sub(r.window_ns * r.windows as u64);
            while samples.len() > 1 && samples.front().is_some_and(|&(t, _, _)| t < horizon) {
                samples.pop_front();
            }
            if let (Some(&(_, n0, d0)), Some(&(_, n1, d1))) = (samples.front(), samples.back()) {
                let dn = n1.saturating_sub(n0) as f64;
                let dd = d1.saturating_sub(d0) as f64;
                if dd > 0.0 {
                    r.gauge.set((dn / dd * 1000.0) as i64);
                }
            }
        }
        out
    }

    /// Names of the registered ratios (introspection/debug).
    pub fn ratio_names(&self) -> Vec<String> {
        self.inner
            .ratios
            .read()
            .iter()
            .map(|r| r.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> (SloTracker, Arc<Registry>) {
        let reg = Arc::new(Registry::new());
        let t = SloTracker::new(
            reg.clone(),
            SlidingConfig {
                window_ns: 1_000_000,
                windows: 3,
                bounds: vec![100.0, 1_000.0, 10_000.0, 100_000.0],
            },
        );
        (t, reg)
    }

    #[test]
    fn healthy_traffic_burns_nothing() {
        let (t, reg) = tracker();
        t.add(SloSpec::p99("deser_p99", "deserialize", 10_000.0));
        assert!(t.watches("deserialize"));
        assert!(!t.watches("dma"));
        for i in 0..1000 {
            t.observe_stage("deserialize", i * 100, 500.0);
        }
        let s = &t.evaluate(100_000)[0];
        assert!(!s.violated);
        assert_eq!(s.bad_fraction, 0.0);
        assert_eq!(s.window_count, 1000);
        assert_eq!(
            reg.gauge_value("slo_burn_rate", &[("slo", "deser_p99")]),
            Some(0)
        );
        assert_eq!(
            reg.counter_value("slo_violations_total", &[("slo", "deser_p99")]),
            Some(0)
        );
    }

    #[test]
    fn degrading_tail_breaches_and_burns() {
        let (t, reg) = tracker();
        t.add(SloSpec::p99("deser_p99", "deserialize", 1_000.0));
        // 5% of requests land at 50 µs — five times the 1% budget.
        for i in 0..1000u64 {
            let v = if i % 20 == 0 { 50_000.0 } else { 300.0 };
            t.observe_stage("deserialize", i * 100, v);
        }
        let s = &t.evaluate(100_000)[0];
        assert!(s.violated, "{s:?}");
        assert!((s.bad_fraction - 0.05).abs() < 1e-9);
        assert!((s.burn_rate - 5.0).abs() < 1e-9);
        assert_eq!(
            reg.gauge_value("slo_burn_rate", &[("slo", "deser_p99")]),
            Some(5000)
        );
        assert_eq!(
            reg.counter_value("slo_violations_total", &[("slo", "deser_p99")]),
            Some(1)
        );
        // The slow cohort ages out of the window: burn drops back to 0.
        for i in 0..1000u64 {
            t.observe_stage("deserialize", 10_000_000 + i * 100, 300.0);
        }
        let s = &t.evaluate(10_100_000)[0];
        assert!(!s.violated);
        assert_eq!(
            reg.gauge_value("slo_burn_rate", &[("slo", "deser_p99")]),
            Some(0)
        );
    }

    #[test]
    fn windowed_ratio_tracks_recent_deltas_only() {
        let (t, reg) = tracker();
        let num = Counter::new();
        let den = Counter::new();
        t.add_ratio("pcie_amplification", num.clone(), den.clone());
        // Early history: 10x amplification.
        num.inc_by(1000);
        den.inc_by(100);
        t.evaluate(0);
        // Recent window: 2x amplification.
        num.inc_by(200);
        den.inc_by(100);
        t.evaluate(1_000_000);
        num.inc_by(200);
        den.inc_by(100);
        t.evaluate(2_000_000);
        // Window spans 3 epochs; the t=0 sample ages out at t=4e6.
        num.inc_by(200);
        den.inc_by(100);
        t.evaluate(4_000_000);
        assert_eq!(
            reg.gauge_value("pcie_amplification_milli", &[]),
            Some(2000),
            "aged-out 10x prefix must not pollute the windowed ratio"
        );
        assert_eq!(t.ratio_names(), vec!["pcie_amplification".to_string()]);
    }
}
