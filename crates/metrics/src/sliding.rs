//! Sliding-window histograms: a ring of rotating [`Histogram`] epochs.
//!
//! A cumulative [`Histogram`] answers "what was p99 since startup" — the
//! wrong question for live operations, where "is p99 degrading *right
//! now*" is what matters. A [`SlidingHistogram`] holds `windows` epoch
//! histograms of `window_ns` each; observations land in the epoch their
//! timestamp falls into, old epochs age out as time advances, and a
//! window snapshot merges the surviving epochs into one
//! [`HistogramSnapshot`] covering roughly the last
//! `windows × window_ns` nanoseconds.
//!
//! Timestamps are supplied by the caller (`now_ns`), so the same code
//! runs against the wall clock and against a simulation's virtual clock
//! (`pbo_trace::Clock` / `VirtualClock` both yield ns) — window rotation
//! under virtual time is deterministic and testable.

use crate::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration of a sliding histogram.
#[derive(Clone, Debug)]
pub struct SlidingConfig {
    /// Epoch length in nanoseconds.
    pub window_ns: u64,
    /// Number of epochs retained (the sliding window is
    /// `windows × window_ns` long).
    pub windows: usize,
    /// Bucket upper bounds shared by every epoch.
    pub bounds: Vec<f64>,
}

impl SlidingConfig {
    /// One-second epochs, last 10 kept, default latency buckets.
    pub fn seconds(windows: usize) -> Self {
        Self {
            window_ns: 1_000_000_000,
            windows: windows.max(1),
            bounds: crate::DEFAULT_BUCKETS.to_vec(),
        }
    }
}

struct Epoch {
    /// Epoch index (`t_ns / window_ns`) the slot currently holds, or
    /// `u64::MAX` when the slot has never been written.
    index: u64,
    hist: Histogram,
}

struct Inner {
    cfg: SlidingConfig,
    /// Ring indexed by `epoch_index % windows`.
    epochs: Vec<Epoch>,
}

impl Inner {
    /// Returns the ring slot for the epoch containing `now_ns`,
    /// refreshing it if it still holds an aged-out epoch.
    fn slot_for(&mut self, now_ns: u64) -> &Histogram {
        let idx = now_ns / self.cfg.window_ns;
        let slot = (idx % self.cfg.windows as u64) as usize;
        let e = &mut self.epochs[slot];
        if e.index != idx {
            e.index = idx;
            e.hist = Histogram::new(&self.cfg.bounds);
        }
        &e.hist
    }
}

/// A histogram restricted to a sliding time window.
///
/// Clones share state. Rotation happens lazily on `observe`/`snapshot`
/// (no background thread): an epoch slot is recycled the first time a
/// call lands in a newer epoch that maps onto it.
#[derive(Clone)]
pub struct SlidingHistogram {
    inner: Arc<Mutex<Inner>>,
}

impl SlidingHistogram {
    /// Creates an empty sliding histogram.
    ///
    /// # Panics
    /// Panics if `window_ns` is zero or `bounds` is invalid for
    /// [`Histogram::new`].
    pub fn new(cfg: SlidingConfig) -> Self {
        assert!(cfg.window_ns > 0, "window_ns must be positive");
        let windows = cfg.windows.max(1);
        let cfg = SlidingConfig { windows, ..cfg };
        let epochs = (0..windows)
            .map(|_| Epoch {
                index: u64::MAX,
                hist: Histogram::new(&cfg.bounds),
            })
            .collect();
        Self {
            inner: Arc::new(Mutex::new(Inner { cfg, epochs })),
        }
    }

    /// Records one observation stamped `now_ns`.
    pub fn observe(&self, now_ns: u64, v: f64) {
        let hist = {
            let mut inner = self.inner.lock();
            inner.slot_for(now_ns).clone()
        };
        hist.observe(v);
    }

    /// Merged snapshot of every epoch still inside the window ending at
    /// `now_ns` (the current epoch plus up to `windows - 1` predecessors).
    pub fn window_snapshot(&self, now_ns: u64) -> HistogramSnapshot {
        let inner = self.inner.lock();
        let cur = now_ns / inner.cfg.window_ns;
        let oldest = cur.saturating_sub(inner.cfg.windows as u64 - 1);
        let mut merged = HistogramSnapshot {
            bounds: inner.cfg.bounds.clone(),
            buckets: vec![0; inner.cfg.bounds.len() + 1],
            count: 0,
            sum: 0.0,
        };
        for e in &inner.epochs {
            if e.index == u64::MAX || e.index < oldest || e.index > cur {
                continue;
            }
            let snap = e.hist.snapshot();
            for (m, b) in merged.buckets.iter_mut().zip(snap.buckets.iter()) {
                *m += b;
            }
            merged.count += snap.count;
            merged.sum += snap.sum;
        }
        merged
    }

    /// The configured window extent in nanoseconds.
    pub fn window_extent_ns(&self) -> u64 {
        let inner = self.inner.lock();
        inner.cfg.window_ns * inner.cfg.windows as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window_ns: u64, windows: usize) -> SlidingConfig {
        SlidingConfig {
            window_ns,
            windows,
            bounds: vec![10.0, 100.0, 1000.0, 10_000.0],
        }
    }

    #[test]
    fn observations_age_out_of_the_window() {
        let s = SlidingHistogram::new(cfg(1000, 3));
        s.observe(0, 5.0);
        s.observe(1500, 50.0);
        s.observe(2500, 500.0);
        // Window at t=2999 covers epochs 0..=2: everything visible.
        assert_eq!(s.window_snapshot(2999).count, 3);
        // At t=3500 (epoch 3) the window is epochs 1..=3: the t=0
        // observation has aged out.
        let snap = s.window_snapshot(3500);
        assert_eq!(snap.count, 2);
        assert!((snap.sum - 550.0).abs() < 1e-9);
        // Far future: everything aged out.
        assert_eq!(s.window_snapshot(100_000).count, 0);
    }

    #[test]
    fn stale_slot_is_recycled_on_next_write() {
        let s = SlidingHistogram::new(cfg(1000, 2));
        s.observe(0, 5.0); // epoch 0 -> slot 0
        s.observe(2100, 5.0); // epoch 2 -> slot 0 again: must recycle
        let snap = s.window_snapshot(2100); // epochs 1..=2
        assert_eq!(snap.count, 1, "epoch-0 data leaked into slot reuse");
    }

    #[test]
    fn p99_under_virtual_clock_rotation_matches_reference() {
        // Deterministic virtual-time drive: three epochs of latencies,
        // then the p99 over the last-K window must equal a reference
        // histogram fed exactly the in-window observations.
        let bounds: Vec<f64> = (1..=100).map(|i| (i * 100) as f64).collect();
        let s = SlidingHistogram::new(SlidingConfig {
            window_ns: 1_000_000,
            windows: 2,
            bounds: bounds.clone(),
        });
        // Epoch 0: fast traffic (will age out).
        for i in 0..1000u64 {
            s.observe(i, 100.0 + (i % 10) as f64);
        }
        // Epochs 1 and 2: slower tail.
        let reference = Histogram::new(&bounds);
        for i in 0..1000u64 {
            let v = if i % 100 == 0 { 9_500.0 } else { 300.0 };
            s.observe(1_000_000 + i, v);
            reference.observe(v);
        }
        for i in 0..500u64 {
            let v = 700.0 + (i % 3) as f64 * 50.0;
            s.observe(2_000_000 + i, v);
            reference.observe(v);
        }
        let now = 2_000_500;
        let window = s.window_snapshot(now);
        assert_eq!(window.count, reference.count());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let got = window.quantile(q);
            let want = reference.snapshot().quantile(q);
            assert!(
                (got - want).abs() < 1e-9,
                "q={q}: window {got} != reference {want}"
            );
        }
        // Sanity: the slow cohort (0.67% of the window) dominates the
        // extreme tail, which the aged-out fast epoch would have diluted.
        assert!(window.quantile(0.999) > 1000.0);
    }

    #[test]
    fn shared_clones_observe_into_one_ring() {
        let s = SlidingHistogram::new(cfg(1000, 4));
        let s2 = s.clone();
        s.observe(100, 5.0);
        s2.observe(200, 7.0);
        assert_eq!(s.window_snapshot(500).count, 2);
        assert_eq!(s.window_extent_ns(), 4000);
    }
}
