//! Host-side typed access to received native objects.
//!
//! After the DMA write lands, the host holds an object graph whose internal
//! pointers are *host virtual addresses* into the receive buffer (§III.B).
//! A C++ application would reinterpret-cast and go; the Rust reproduction
//! wraps the same raw-address arithmetic in [`NativeObject`], which
//! validates every dereference against the receive-buffer bounds — so a
//! corrupted or malicious block cannot read outside the pinned region.
//!
//! This is the *only* module in the crate with `unsafe` code, and every
//! raw read is preceded by a range check against the region.

use crate::layout::{ClassId, FieldMeta, MessageMeta, NativeFieldKind, NativeScalar, VEC_SIZE};
use crate::sso::Loc;
use crate::table::Adt;

/// Errors raised by view accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewError {
    /// A pointer or range fell outside the receive region.
    OutOfRegion {
        /// Offending address.
        addr: u64,
        /// Length requested.
        len: u64,
    },
    /// The object's vptr word names a different class than expected.
    WrongClass {
        /// Class the caller expected.
        expected: ClassId,
        /// Class id found in the object header.
        found: u64,
    },
    /// The field number does not exist in this class.
    NoSuchField(u32),
    /// The field exists but has a different native kind.
    TypeMismatch {
        /// Field number.
        field: u32,
        /// What the accessor wanted.
        wanted: &'static str,
    },
    /// A string field's bytes are not valid UTF-8.
    BadUtf8,
    /// A vector header is inconsistent (end < begin, or length not a
    /// multiple of the element size).
    BadVector,
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::OutOfRegion { addr, len } => {
                write!(f, "pointer {addr:#x}+{len} outside receive region")
            }
            ViewError::WrongClass { expected, found } => {
                write!(f, "object class {found} where {expected} expected")
            }
            ViewError::NoSuchField(n) => write!(f, "no field {n}"),
            ViewError::TypeMismatch { field, wanted } => {
                write!(f, "field {field} is not {wanted}")
            }
            ViewError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ViewError::BadVector => write!(f, "corrupt vector header"),
        }
    }
}

impl std::error::Error for ViewError {}

/// The memory window all pointers must fall inside.
#[derive(Clone, Copy, Debug)]
struct Region {
    base: u64,
    len: u64,
}

impl Region {
    fn check(&self, addr: u64, len: u64) -> Result<(), ViewError> {
        let end = addr
            .checked_add(len)
            .ok_or(ViewError::OutOfRegion { addr, len })?;
        if addr >= self.base && end <= self.base + self.len {
            Ok(())
        } else {
            Err(ViewError::OutOfRegion { addr, len })
        }
    }
}

/// A typed, bounds-checked view of one native object.
#[derive(Clone, Copy)]
pub struct NativeObject<'a> {
    adt: &'a Adt,
    meta: &'a MessageMeta,
    addr: u64,
    region: Region,
}

impl<'a> NativeObject<'a> {
    /// Creates a view over an object of class `class_id` living at byte
    /// `offset` of `region` (typically the receive buffer, or a test
    /// arena). Verifies the object fits and its vptr word matches.
    pub fn from_slice(
        adt: &'a Adt,
        class_id: ClassId,
        region: &'a [u8],
        offset: usize,
    ) -> Result<Self, ViewError> {
        let base = region.as_ptr() as u64;
        Self::from_addr(
            adt,
            class_id,
            base + offset as u64,
            base,
            region.len() as u64,
        )
    }

    /// Creates a view from raw coordinates: the object's host address and
    /// the bounds of the memory it (and everything it points to) must live
    /// in. Safe because every subsequent read re-validates against the
    /// region; the *caller* asserts the region `[region_base,
    /// region_base+region_len)` is valid memory it owns, which is enforced
    /// by taking it from a live allocation in [`NativeObject::from_slice`].
    pub fn from_addr(
        adt: &'a Adt,
        class_id: ClassId,
        addr: u64,
        region_base: u64,
        region_len: u64,
    ) -> Result<Self, ViewError> {
        let meta = adt.class(class_id).map_err(|_| ViewError::WrongClass {
            expected: class_id,
            found: u64::MAX,
        })?;
        let region = Region {
            base: region_base,
            len: region_len,
        };
        region.check(addr, meta.size as u64)?;
        let view = Self {
            adt,
            meta,
            addr,
            region,
        };
        let vptr = view.load_u64(addr)?;
        if vptr != class_id as u64 {
            return Err(ViewError::WrongClass {
                expected: class_id,
                found: vptr,
            });
        }
        Ok(view)
    }

    /// The object's class metadata.
    pub fn meta(&self) -> &MessageMeta {
        self.meta
    }

    /// The object's host address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    fn load_bytes(&self, addr: u64, len: u64) -> Result<&'a [u8], ViewError> {
        self.region.check(addr, len)?;
        // SAFETY: the range is inside the caller-supplied live region.
        Ok(unsafe { std::slice::from_raw_parts(addr as *const u8, len as usize) })
    }

    fn load_u64(&self, addr: u64) -> Result<u64, ViewError> {
        let b = self.load_bytes(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn field(&self, number: u32) -> Result<&'a FieldMeta, ViewError> {
        // meta borrows from the Adt with lifetime 'a.
        self.meta
            .field(number)
            .ok_or(ViewError::NoSuchField(number))
    }

    fn scalar_slot(
        &self,
        number: u32,
        want: NativeScalar,
        name: &'static str,
    ) -> Result<u64, ViewError> {
        let f = self.field(number)?;
        match f.kind {
            NativeFieldKind::Scalar(s) if s == want => Ok(self.addr + f.offset as u64),
            _ => Err(ViewError::TypeMismatch {
                field: number,
                wanted: name,
            }),
        }
    }

    /// Whether an explicit-presence field is set.
    pub fn has(&self, number: u32) -> Result<bool, ViewError> {
        let f = self.field(number)?;
        match f.presence_bit {
            None => Err(ViewError::TypeMismatch {
                field: number,
                wanted: "a field with explicit presence",
            }),
            Some(bit) => {
                let byte_addr =
                    self.addr + crate::layout::PRESENCE_OFFSET as u64 + (bit / 8) as u64;
                let b = self.load_bytes(byte_addr, 1)?[0];
                Ok(b & (1 << (bit % 8)) != 0)
            }
        }
    }

    /// Reads a `uint32`/`fixed32` field.
    pub fn get_u32(&self, number: u32) -> Result<u32, ViewError> {
        let a = self.scalar_slot(number, NativeScalar::U32, "u32")?;
        Ok(u32::from_le_bytes(
            self.load_bytes(a, 4)?.try_into().unwrap(),
        ))
    }

    /// Reads an `int32`/`sint32`/`sfixed32`/enum field.
    pub fn get_i32(&self, number: u32) -> Result<i32, ViewError> {
        let a = self.scalar_slot(number, NativeScalar::I32, "i32")?;
        Ok(i32::from_le_bytes(
            self.load_bytes(a, 4)?.try_into().unwrap(),
        ))
    }

    /// Reads a `uint64`/`fixed64` field.
    pub fn get_u64(&self, number: u32) -> Result<u64, ViewError> {
        let a = self.scalar_slot(number, NativeScalar::U64, "u64")?;
        self.load_u64(a)
    }

    /// Reads an `int64`/`sint64`/`sfixed64` field.
    pub fn get_i64(&self, number: u32) -> Result<i64, ViewError> {
        let a = self.scalar_slot(number, NativeScalar::I64, "i64")?;
        Ok(self.load_u64(a)? as i64)
    }

    /// Reads a `float` field.
    pub fn get_f32(&self, number: u32) -> Result<f32, ViewError> {
        let a = self.scalar_slot(number, NativeScalar::F32, "f32")?;
        Ok(f32::from_le_bytes(
            self.load_bytes(a, 4)?.try_into().unwrap(),
        ))
    }

    /// Reads a `double` field.
    pub fn get_f64(&self, number: u32) -> Result<f64, ViewError> {
        let a = self.scalar_slot(number, NativeScalar::F64, "f64")?;
        Ok(f64::from_le_bytes(
            self.load_bytes(a, 8)?.try_into().unwrap(),
        ))
    }

    /// Reads a `bool` field.
    pub fn get_bool(&self, number: u32) -> Result<bool, ViewError> {
        let a = self.scalar_slot(number, NativeScalar::Bool, "bool")?;
        Ok(self.load_bytes(a, 1)?[0] != 0)
    }

    fn string_at(&self, struct_addr: u64) -> Result<&'a [u8], ViewError> {
        let lib = self.adt.stdlib();
        let ssize = lib.string_size() as u64;
        let struct_bytes = self.load_bytes(struct_addr, ssize)?;
        let (len, loc) = lib.read_string(struct_bytes, struct_addr);
        match loc {
            Loc::Inline { offset } => {
                if len > lib.sso_capacity() {
                    return Err(ViewError::BadVector);
                }
                Ok(&struct_bytes[offset..offset + len])
            }
            Loc::Heap { addr } => self.load_bytes(addr, len as u64),
        }
    }

    /// Reads a `bytes` (or `string`) field's raw bytes — zero-copy.
    pub fn get_bytes(&self, number: u32) -> Result<&'a [u8], ViewError> {
        let f = self.field(number)?;
        if f.kind != NativeFieldKind::Str {
            return Err(ViewError::TypeMismatch {
                field: number,
                wanted: "string/bytes",
            });
        }
        self.string_at(self.addr + f.offset as u64)
    }

    /// Reads a `string` field — zero-copy `&str`.
    pub fn get_str(&self, number: u32) -> Result<&'a str, ViewError> {
        let bytes = self.get_bytes(number)?;
        std::str::from_utf8(bytes).map_err(|_| ViewError::BadUtf8)
    }

    /// Reads a singular nested message; `None` when unset (null pointer).
    pub fn get_message(&self, number: u32) -> Result<Option<NativeObject<'a>>, ViewError> {
        let f = self.field(number)?;
        let NativeFieldKind::MessagePtr(child) = f.kind else {
            return Err(ViewError::TypeMismatch {
                field: number,
                wanted: "message",
            });
        };
        let ptr = self.load_u64(self.addr + f.offset as u64)?;
        if ptr == 0 {
            return Ok(None);
        }
        NativeObject::from_addr(self.adt, child, ptr, self.region.base, self.region.len).map(Some)
    }

    /// Opens a repeated field.
    pub fn get_repeated(&self, number: u32) -> Result<RepeatedView<'a>, ViewError> {
        let f = self.field(number)?;
        let (elem_size, kind) = match f.kind {
            NativeFieldKind::RepScalar(s) => (s.size() as u64, RepKind::Scalar(s)),
            NativeFieldKind::RepStr => (self.adt.stdlib().string_size() as u64, RepKind::Str),
            NativeFieldKind::RepMessage(c) => (8, RepKind::Message(c)),
            _ => {
                return Err(ViewError::TypeMismatch {
                    field: number,
                    wanted: "repeated",
                })
            }
        };
        let slot = self.addr + f.offset as u64;
        let hdr = self.load_bytes(slot, VEC_SIZE as u64)?;
        let begin = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
        let end = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
        if end < begin || (end - begin) % elem_size != 0 {
            return Err(ViewError::BadVector);
        }
        let len = ((end - begin) / elem_size) as usize;
        if len > 0 {
            self.region.check(begin, end - begin)?;
        }
        Ok(RepeatedView {
            parent: *self,
            begin,
            len,
            elem_size,
            kind,
        })
    }
}

#[derive(Clone, Copy)]
enum RepKind {
    Scalar(NativeScalar),
    Str,
    Message(ClassId),
}

/// A repeated field's elements.
#[derive(Clone, Copy)]
pub struct RepeatedView<'a> {
    parent: NativeObject<'a>,
    begin: u64,
    len: usize,
    elem_size: u64,
    kind: RepKind,
}

impl<'a> RepeatedView<'a> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn elem_addr(&self, i: usize) -> Result<u64, ViewError> {
        if i >= self.len {
            return Err(ViewError::OutOfRegion {
                addr: self.begin + i as u64 * self.elem_size,
                len: self.elem_size,
            });
        }
        Ok(self.begin + i as u64 * self.elem_size)
    }

    fn want(&self, ok: bool, wanted: &'static str) -> Result<(), ViewError> {
        if ok {
            Ok(())
        } else {
            Err(ViewError::TypeMismatch { field: 0, wanted })
        }
    }

    /// Reads element `i` as `u32`.
    pub fn u32_at(&self, i: usize) -> Result<u32, ViewError> {
        self.want(
            matches!(self.kind, RepKind::Scalar(NativeScalar::U32)),
            "u32",
        )?;
        let b = self.parent.load_bytes(self.elem_addr(i)?, 4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads element `i` as `u64`.
    pub fn u64_at(&self, i: usize) -> Result<u64, ViewError> {
        self.want(
            matches!(self.kind, RepKind::Scalar(NativeScalar::U64)),
            "u64",
        )?;
        let b = self.parent.load_bytes(self.elem_addr(i)?, 8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads element `i` as `i64`.
    pub fn i64_at(&self, i: usize) -> Result<i64, ViewError> {
        self.want(
            matches!(self.kind, RepKind::Scalar(NativeScalar::I64)),
            "i64",
        )?;
        let b = self.parent.load_bytes(self.elem_addr(i)?, 8)?;
        Ok(i64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads element `i` as `i32`.
    pub fn i32_at(&self, i: usize) -> Result<i32, ViewError> {
        self.want(
            matches!(self.kind, RepKind::Scalar(NativeScalar::I32)),
            "i32",
        )?;
        let b = self.parent.load_bytes(self.elem_addr(i)?, 4)?;
        Ok(i32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads element `i` as `f64`.
    pub fn f64_at(&self, i: usize) -> Result<f64, ViewError> {
        self.want(
            matches!(self.kind, RepKind::Scalar(NativeScalar::F64)),
            "f64",
        )?;
        let b = self.parent.load_bytes(self.elem_addr(i)?, 8)?;
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads element `i` as `f32`.
    pub fn f32_at(&self, i: usize) -> Result<f32, ViewError> {
        self.want(
            matches!(self.kind, RepKind::Scalar(NativeScalar::F32)),
            "f32",
        )?;
        let b = self.parent.load_bytes(self.elem_addr(i)?, 4)?;
        Ok(f32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads element `i` as `bool`.
    pub fn bool_at(&self, i: usize) -> Result<bool, ViewError> {
        self.want(
            matches!(self.kind, RepKind::Scalar(NativeScalar::Bool)),
            "bool",
        )?;
        let b = self.parent.load_bytes(self.elem_addr(i)?, 1)?;
        Ok(b[0] != 0)
    }

    /// Reads element `i` of a repeated string/bytes field as raw bytes
    /// (no UTF-8 requirement).
    pub fn bytes_at(&self, i: usize) -> Result<&'a [u8], ViewError> {
        self.want(matches!(self.kind, RepKind::Str), "string/bytes")?;
        self.parent.string_at(self.elem_addr(i)?)
    }

    /// Reads element `i` as a string.
    pub fn str_at(&self, i: usize) -> Result<&'a str, ViewError> {
        self.want(matches!(self.kind, RepKind::Str), "string")?;
        let bytes = self.parent.string_at(self.elem_addr(i)?)?;
        std::str::from_utf8(bytes).map_err(|_| ViewError::BadUtf8)
    }

    /// Reads element `i` as a nested message view.
    pub fn message_at(&self, i: usize) -> Result<NativeObject<'a>, ViewError> {
        let RepKind::Message(class) = self.kind else {
            return Err(ViewError::TypeMismatch {
                field: 0,
                wanted: "message",
            });
        };
        let ptr_bytes = self.parent.load_bytes(self.elem_addr(i)?, 8)?;
        let ptr = u64::from_le_bytes(ptr_bytes.try_into().unwrap());
        NativeObject::from_addr(
            self.parent.adt,
            class,
            ptr,
            self.parent.region.base,
            self.parent.region.len,
        )
    }

    /// Borrows the whole array as `&[u32]` when the element type matches
    /// and the data is suitably aligned — the true zero-copy path.
    pub fn as_u32_slice(&self) -> Result<&'a [u32], ViewError> {
        self.want(
            matches!(self.kind, RepKind::Scalar(NativeScalar::U32)),
            "u32",
        )?;
        if self.len == 0 {
            return Ok(&[]);
        }
        self.parent.region.check(self.begin, self.len as u64 * 4)?;
        if !self.begin.is_multiple_of(4) {
            return Err(ViewError::BadVector);
        }
        // SAFETY: range validated against the live region; alignment
        // checked just above.
        Ok(unsafe { std::slice::from_raw_parts(self.begin as *const u32, self.len) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sso::StdLib;
    use crate::writer::{NativeWriter, WriterConfig};
    use pbo_protowire::workloads::{gen_small, paper_schema};
    use pbo_protowire::{
        encode_message, DynamicMessage, FieldType, Schema, SchemaBuilder, StackDeserializer, Value,
    };

    /// Deserializes `msg` into a fresh arena and opens a view on the root.
    fn build<'a>(
        schema: &Schema,
        adt: &'a Adt,
        msg: &DynamicMessage,
        arena: &'a mut [u8],
    ) -> NativeObject<'a> {
        let wire = encode_message(msg);
        let desc = schema.message(&msg.descriptor().name).unwrap().clone();
        let host_base = arena.as_ptr() as u64;
        assert_eq!(host_base % 8, 0, "test arena must be 8-aligned");
        let mut w = NativeWriter::new(adt, &desc, arena, WriterConfig { host_base }).unwrap();
        StackDeserializer::new(schema)
            .deserialize(&desc, &wire, &mut w)
            .unwrap();
        w.finish().unwrap();
        let class = adt.class_id(&desc.name).unwrap();
        NativeObject::from_slice(adt, class, arena, 0).unwrap()
    }

    fn aligned_arena(len: usize) -> Vec<u8> {
        // Vec<u8> allocations may be 1-aligned; over-allocate via u64 to
        // guarantee 8-alignment of the base pointer.
        let v: Vec<u64> = vec![0; len.div_ceil(8)];
        let mut v = std::mem::ManuallyDrop::new(v);
        // SAFETY: reinterpreting u64 storage as bytes; capacity/length
        // scaled accordingly; alignment of u8 (1) is weaker than u64 (8),
        // and Vec's allocator contract still sees a compatible layout
        // because we rebuild with the byte-scaled capacity.
        unsafe { Vec::from_raw_parts(v.as_mut_ptr() as *mut u8, len, v.capacity() * 8) }
    }

    #[test]
    fn small_roundtrip_via_view() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let msg = gen_small(&schema);
        let mut arena = aligned_arena(4096);
        let v = build(&schema, &adt, &msg, &mut arena);
        assert_eq!(v.get_u32(1).unwrap(), 300);
        assert_eq!(v.get_u32(2).unwrap(), 200);
        assert_eq!(v.get_u64(3).unwrap(), 77);
        assert_eq!(v.get_f32(4).unwrap(), 1.5);
        assert!(v.get_bool(5).unwrap());
    }

    #[test]
    fn string_roundtrips_sso_and_heap() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        for text in ["", "tiny", "exactly15bytes!", &"long".repeat(50)] {
            let mut m = DynamicMessage::of(&schema, "bench.CharArray");
            if !text.is_empty() {
                m.set(1, Value::Str(text.to_string()));
            }
            let mut arena = aligned_arena(4096);
            let v = build(&schema, &adt, &m, &mut arena);
            assert_eq!(v.get_str(1).unwrap(), text);
        }
    }

    #[test]
    fn libcxx_abi_roundtrips_too() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libcxx);
        for text in ["short", &"x".repeat(22), &"y".repeat(23), &"z".repeat(500)] {
            let mut m = DynamicMessage::of(&schema, "bench.CharArray");
            m.set(1, Value::Str(text.to_string()));
            let mut arena = aligned_arena(4096);
            let v = build(&schema, &adt, &m, &mut arena);
            assert_eq!(v.get_str(1).unwrap(), text);
        }
    }

    #[test]
    fn repeated_u32_zero_copy_slice() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let mut m = DynamicMessage::of(&schema, "bench.IntArray");
        let vals: Vec<u32> = (0..512u32)
            .map(|i| i.wrapping_mul(2654435761) % 100000)
            .collect();
        for &x in &vals {
            m.push(1, Value::U64(x as u64));
        }
        let mut arena = aligned_arena(1 << 14);
        let v = build(&schema, &adt, &m, &mut arena);
        let rep = v.get_repeated(1).unwrap();
        assert_eq!(rep.len(), 512);
        assert_eq!(rep.u32_at(0).unwrap(), vals[0]);
        assert_eq!(rep.u32_at(511).unwrap(), vals[511]);
        assert_eq!(rep.as_u32_slice().unwrap(), &vals[..]);
    }

    #[test]
    fn nested_and_repeated_messages() {
        let mut b = SchemaBuilder::new();
        b.message("Leaf")
            .scalar("x", 1, FieldType::SInt64)
            .scalar("tag", 2, FieldType::String)
            .finish();
        b.message("Root")
            .message_field("one", 1, "Leaf")
            .repeated_message("many", 2, "Leaf")
            .scalar("d", 3, FieldType::Double)
            .finish();
        let schema = b.build();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);

        let mut leaf = DynamicMessage::of(&schema, "Leaf");
        leaf.set(1, Value::I64(-5));
        leaf.set(2, Value::Str("λ".into()));
        let mut root = DynamicMessage::of(&schema, "Root");
        root.set(1, Value::Message(Box::new(leaf.clone())));
        for i in 0..3i64 {
            let mut l = DynamicMessage::of(&schema, "Leaf");
            l.set(1, Value::I64(i * 100));
            root.push(2, Value::Message(Box::new(l)));
        }
        root.set(3, Value::F64(2.75));

        let mut arena = aligned_arena(8192);
        let v = build(&schema, &adt, &root, &mut arena);
        assert_eq!(v.get_f64(3).unwrap(), 2.75);
        let one = v.get_message(1).unwrap().expect("present");
        assert!(v.has(1).unwrap());
        assert_eq!(one.get_i64(1).unwrap(), -5);
        assert_eq!(one.get_str(2).unwrap(), "λ");
        let many = v.get_repeated(2).unwrap();
        assert_eq!(many.len(), 3);
        for i in 0..3 {
            assert_eq!(
                many.message_at(i).unwrap().get_i64(1).unwrap(),
                i as i64 * 100
            );
        }
    }

    #[test]
    fn absent_message_is_none() {
        let mut b = SchemaBuilder::new();
        b.message("Leaf").scalar("x", 1, FieldType::Int32).finish();
        b.message("Root").message_field("one", 1, "Leaf").finish();
        let schema = b.build();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let root = DynamicMessage::of(&schema, "Root");
        let mut arena = aligned_arena(1024);
        let v = build(&schema, &adt, &root, &mut arena);
        assert!(v.get_message(1).unwrap().is_none());
        assert!(!v.has(1).unwrap());
    }

    #[test]
    fn repeated_strings_mixed_sso_heap() {
        let mut b = SchemaBuilder::new();
        b.message("M")
            .repeated("names", 1, FieldType::String)
            .finish();
        let schema = b.build();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let inputs = ["a", &"b".repeat(40), "", "fifteen-exactly", &"c".repeat(16)];
        let mut m = DynamicMessage::of(&schema, "M");
        for s in inputs {
            m.push(1, Value::Str(s.to_string()));
        }
        let mut arena = aligned_arena(8192);
        let v = build(&schema, &adt, &m, &mut arena);
        let rep = v.get_repeated(1).unwrap();
        assert_eq!(rep.len(), inputs.len());
        for (i, s) in inputs.iter().enumerate() {
            assert_eq!(rep.str_at(i).unwrap(), *s);
        }
    }

    #[test]
    fn out_of_region_pointer_rejected() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let mut m = DynamicMessage::of(&schema, "bench.CharArray");
        m.set(1, Value::Str("long enough to be heap-allocated".into()));
        let mut arena = aligned_arena(4096);
        {
            let v = build(&schema, &adt, &m, &mut arena);
            assert!(v.get_str(1).is_ok());
        }
        // Corrupt the heap pointer to point far outside the region.
        arena[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let class = adt.class_id("bench.CharArray").unwrap();
        let v = NativeObject::from_slice(&adt, class, &arena, 0).unwrap();
        assert!(matches!(v.get_str(1), Err(ViewError::OutOfRegion { .. })));
    }

    #[test]
    fn wrong_class_header_rejected() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let msg = gen_small(&schema);
        let mut arena = aligned_arena(4096);
        {
            build(&schema, &adt, &msg, &mut arena);
        }
        arena[0..8].copy_from_slice(&999u64.to_le_bytes());
        let class = adt.class_id("bench.Small").unwrap();
        assert!(matches!(
            NativeObject::from_slice(&adt, class, &arena, 0),
            Err(ViewError::WrongClass { found: 999, .. })
        ));
    }

    #[test]
    fn type_mismatch_and_missing_field_errors() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let msg = gen_small(&schema);
        let mut arena = aligned_arena(4096);
        let v = build(&schema, &adt, &msg, &mut arena);
        assert!(matches!(v.get_str(1), Err(ViewError::TypeMismatch { .. })));
        assert!(matches!(v.get_u64(1), Err(ViewError::TypeMismatch { .. })));
        assert!(matches!(v.get_u32(99), Err(ViewError::NoSuchField(99))));
    }

    #[test]
    fn unaligned_vector_data_rejected_by_slice_accessor() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let mut m = DynamicMessage::of(&schema, "bench.IntArray");
        m.push(1, Value::U64(1));
        m.push(1, Value::U64(2));
        let mut arena = aligned_arena(4096);
        {
            build(&schema, &adt, &m, &mut arena);
        }
        // Skew the begin pointer by 2: element getters still work (they
        // read unaligned), but the zero-copy &[u32] borrow must refuse.
        let begin = u64::from_le_bytes(arena[16..24].try_into().unwrap());
        let end = u64::from_le_bytes(arena[24..32].try_into().unwrap());
        arena[16..24].copy_from_slice(&(begin + 2).to_le_bytes());
        arena[24..32].copy_from_slice(&(end + 2).to_le_bytes());
        let class = adt.class_id("bench.IntArray").unwrap();
        let v = NativeObject::from_slice(&adt, class, &arena, 0).unwrap();
        let rep = v.get_repeated(1).unwrap();
        assert_eq!(rep.len(), 2);
        assert!(matches!(rep.as_u32_slice(), Err(ViewError::BadVector)));
    }

    #[test]
    fn corrupt_vector_header_rejected() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let mut m = DynamicMessage::of(&schema, "bench.IntArray");
        m.push(1, Value::U64(1));
        let mut arena = aligned_arena(4096);
        {
            build(&schema, &adt, &m, &mut arena);
        }
        // end < begin
        let begin = u64::from_le_bytes(arena[16..24].try_into().unwrap());
        arena[24..32].copy_from_slice(&(begin - 4).to_le_bytes());
        let class = adt.class_id("bench.IntArray").unwrap();
        let v = NativeObject::from_slice(&adt, class, &arena, 0).unwrap();
        assert!(matches!(
            v.get_repeated(1).err(),
            Some(ViewError::BadVector)
        ));
    }
}
