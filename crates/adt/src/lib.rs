//! The Accelerator Description Table (ADT) and native-object machinery.
//!
//! §V of the paper: the DPU deserializes protobuf messages *directly into
//! the host's native C++ object layout*, so the host application reads an
//! already-built object. Doing that requires three pieces, all reproduced
//! here:
//!
//! 1. **A layout engine** ([`layout`]) that computes, per message class,
//!    exactly what the host compiler would: a leading vptr word (the paper
//!    copies default-instance bytes so the vptr is valid; our "vptr" is the
//!    class id, serving the same role of runtime type identity), a
//!    presence bitfield, then fields in declaration order with natural
//!    sizes/alignments — `sizeof`, `alignof` and `offsetof` agreement being
//!    precisely the paper's binary-compatibility criterion (§V.A).
//!    Strings are 32-byte libstdc++ `std::string`s with small-string
//!    optimization (§V.C, Fig 6); a 24-byte simplified libc++ layout is
//!    also provided since the paper discusses supporting it. Repeated
//!    fields are `std::vector` triples (begin/end/cap pointers).
//! 2. **The ADT itself** ([`table`]): per-class metadata — default
//!    instance bytes, field offsets, field types, child-class links —
//!    generated from message descriptors (standing in for the paper's
//!    `protoc` plugin emitting `.adt.pb.{h,cc}`), serialized into a compact
//!    wire form, transmitted host→DPU once, and guarded by an ABI hash.
//! 3. **The arena writer** ([`writer`]) — the DPU-side half of the custom
//!    deserializer: a [`pbo_protowire::FieldSink`] that materializes native
//!    objects inside a block's arena, crafting *host* pointers against the
//!    mirrored receive buffer's base address (shared address space, §III.B)
//!    — and **the host-side view** ([`view`]), bounds-checked typed
//!    accessors over a received object.
//!
//! `unsafe` appears only in [`view`] (reading objects through the raw host
//! addresses the protocol traffics in); everything else is plain byte
//! manipulation.

#![warn(missing_docs)]

pub mod builder;
pub mod layout;
pub mod sso;
pub mod table;
pub mod view;
pub mod writer;

pub use builder::{BuildError, NativeBuilder};
pub use layout::{FieldMeta, MessageMeta, NativeFieldKind, PRESENCE_OFFSET, VPTR_SIZE};
pub use sso::StdLib;
pub use table::{Adt, AdtError};
pub use view::{NativeObject, RepeatedView, ViewError};
pub use writer::{NativeWriter, WriterConfig};
