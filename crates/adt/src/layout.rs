//! The native layout engine: `sizeof` / `alignof` / `offsetof` for message
//! classes.
//!
//! §V.A defines binary compatibility as agreement, for every field `f` of
//! every type `T`, on `sizeof(T)`, `alignof(T)` and `offsetof(T, f)`. This
//! module *is* that function: given a message descriptor it computes the
//! layout a C++ protobuf message class has under the Itanium ABI —
//! deterministically, so the host and the DPU compute identical tables
//! (guarded further by the ABI hash in [`crate::table`]).
//!
//! Class layout, mirroring generated protobuf C++ (§V.B):
//!
//! ```text
//! offset 0   : vptr word (8 B)  — runtime type identity; the paper copies
//!              default-instance bytes so this is valid, and so do we
//! offset 8   : presence bitfield (≥4 B) — "a bitfield storing field
//!              presence" (§VI.C.3)
//! then       : fields in field-number order, natural alignment:
//!              bool 1, (u)int32/float 4, (u)int64/double 8,
//!              string/bytes = std::string (32 B libstdc++),
//!              message = pointer (8 B),
//!              repeated = std::vector triple {begin, end, cap} (24 B)
//! size       : rounded up to alignment 8
//! ```

use crate::sso::StdLib;
use pbo_protowire::{Cardinality, FieldType, MessageDescriptor};

/// Size of the leading vptr word.
pub const VPTR_SIZE: usize = 8;

/// Offset of the presence bitfield.
pub const PRESENCE_OFFSET: usize = 8;

/// Size of a `std::vector` header (begin/end/cap pointers).
pub const VEC_SIZE: usize = 24;

/// Identifier of a message class within an [`crate::Adt`].
pub type ClassId = u32;

/// Primitive element categories with fixed native width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NativeScalar {
    /// C++ `bool` (1 byte).
    Bool,
    /// `int32_t`.
    I32,
    /// `uint32_t`.
    U32,
    /// `int64_t`.
    I64,
    /// `uint64_t`.
    U64,
    /// `float`.
    F32,
    /// `double`.
    F64,
}

impl NativeScalar {
    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            NativeScalar::Bool => 1,
            NativeScalar::I32 | NativeScalar::U32 | NativeScalar::F32 => 4,
            NativeScalar::I64 | NativeScalar::U64 | NativeScalar::F64 => 8,
        }
    }

    /// Natural alignment (== size).
    pub fn align(self) -> usize {
        self.size()
    }

    /// The native scalar backing a proto field type, if the type is
    /// scalar.
    pub fn of(ty: FieldType) -> Option<Self> {
        Some(match ty {
            FieldType::Bool => NativeScalar::Bool,
            FieldType::Int32 | FieldType::SInt32 | FieldType::SFixed32 | FieldType::Enum => {
                NativeScalar::I32
            }
            FieldType::UInt32 | FieldType::Fixed32 => NativeScalar::U32,
            FieldType::Int64 | FieldType::SInt64 | FieldType::SFixed64 => NativeScalar::I64,
            FieldType::UInt64 | FieldType::Fixed64 => NativeScalar::U64,
            FieldType::Float => NativeScalar::F32,
            FieldType::Double => NativeScalar::F64,
            FieldType::String | FieldType::Bytes | FieldType::Message => return None,
        })
    }
}

/// How a field is represented in the native object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeFieldKind {
    /// Inline scalar.
    Scalar(NativeScalar),
    /// Inline `std::string` (also used for `bytes`).
    Str,
    /// Pointer to a child object (singular message), null when absent.
    MessagePtr(ClassId),
    /// Vector of scalars.
    RepScalar(NativeScalar),
    /// Vector of `std::string`s.
    RepStr,
    /// Vector of pointers to child objects.
    RepMessage(ClassId),
}

impl NativeFieldKind {
    /// Inline size of the field slot.
    pub fn slot_size(self, lib: StdLib) -> usize {
        match self {
            NativeFieldKind::Scalar(s) => s.size(),
            NativeFieldKind::Str => lib.string_size(),
            NativeFieldKind::MessagePtr(_) => 8,
            NativeFieldKind::RepScalar(_)
            | NativeFieldKind::RepStr
            | NativeFieldKind::RepMessage(_) => VEC_SIZE,
        }
    }

    /// Alignment of the field slot.
    pub fn slot_align(self, lib: StdLib) -> usize {
        match self {
            NativeFieldKind::Scalar(s) => s.align(),
            NativeFieldKind::Str => lib.string_align(),
            _ => 8,
        }
    }

    /// Element size for repeated kinds.
    pub fn elem_size(self, lib: StdLib) -> Option<usize> {
        match self {
            NativeFieldKind::RepScalar(s) => Some(s.size()),
            NativeFieldKind::RepStr => Some(lib.string_size()),
            NativeFieldKind::RepMessage(_) => Some(8),
            _ => None,
        }
    }
}

/// Layout of one field within its class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldMeta {
    /// Protobuf field number.
    pub number: u32,
    /// Native representation.
    pub kind: NativeFieldKind,
    /// `offsetof(T, f)`.
    pub offset: usize,
    /// Bit index in the presence bitfield, when the field tracks explicit
    /// presence (optional scalars and singular messages).
    pub presence_bit: Option<u32>,
    /// Whether the wire value is a proto `string` (UTF-8) rather than
    /// `bytes`; both share [`NativeFieldKind::Str`].
    pub is_utf8: bool,
}

/// Layout of one message class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageMeta {
    /// Class id within the ADT ("vptr" value in default instances).
    pub class_id: ClassId,
    /// Fully qualified message name.
    pub name: String,
    /// `sizeof(T)`.
    pub size: usize,
    /// `alignof(T)` (always 8: the vptr dominates).
    pub align: usize,
    /// Bytes occupied by the presence bitfield.
    pub presence_bytes: usize,
    /// Per-field layout, sorted by field number.
    pub fields: Vec<FieldMeta>,
    /// The standard-library ABI strings use.
    pub stdlib: StdLib,
}

impl MessageMeta {
    /// Looks up a field by number.
    pub fn field(&self, number: u32) -> Option<&FieldMeta> {
        self.fields
            .binary_search_by_key(&number, |f| f.number)
            .ok()
            .map(|i| &self.fields[i])
    }

    /// The default instance: `size` bytes, zeroed, with the class id in
    /// the vptr word. String fields are *not* pre-pointed here — the
    /// writer fixes every string slot to its own SSO buffer using the
    /// object's final host address (the part of default-instance copying
    /// that is inherently per-location).
    pub fn default_instance(&self) -> Vec<u8> {
        let mut bytes = vec![0u8; self.size];
        bytes[0..8].copy_from_slice(&(self.class_id as u64).to_le_bytes());
        bytes
    }
}

/// Computes the layout of `desc`. `resolve` maps a nested message type
/// name to its class id (two-phase construction in [`crate::table`]).
pub fn compute_layout<F>(
    desc: &MessageDescriptor,
    class_id: ClassId,
    lib: StdLib,
    mut resolve: F,
) -> MessageMeta
where
    F: FnMut(&str) -> ClassId,
{
    // Presence bits: assigned in field order to fields with explicit
    // presence.
    let mut presence_bits = 0u32;
    let mut field_presence: Vec<Option<u32>> = Vec::with_capacity(desc.fields.len());
    for fd in &desc.fields {
        if fd.has_presence() {
            field_presence.push(Some(presence_bits));
            presence_bits += 1;
        } else {
            field_presence.push(None);
        }
    }
    // At least one 32-bit word of internal state, like protobuf's
    // `_has_bits_` + cached size ("a minimal internal state", §VI.C.3);
    // grows in 4-byte words.
    let presence_bytes = std::cmp::max(4, presence_bits.div_ceil(32) as usize * 4);

    let mut cursor = VPTR_SIZE + presence_bytes;
    let mut fields = Vec::with_capacity(desc.fields.len());
    for (fd, presence) in desc.fields.iter().zip(field_presence) {
        let kind = native_kind(fd, &mut resolve);
        let align = kind.slot_align(lib);
        cursor = cursor.div_ceil(align) * align;
        fields.push(FieldMeta {
            number: fd.number,
            kind,
            offset: cursor,
            presence_bit: presence,
            is_utf8: fd.ty == FieldType::String,
        });
        cursor += kind.slot_size(lib);
    }
    let size = cursor.div_ceil(8) * 8;

    MessageMeta {
        class_id,
        name: desc.name.clone(),
        size: size.max(VPTR_SIZE + presence_bytes),
        align: 8,
        presence_bytes,
        fields,
        stdlib: lib,
    }
}

fn native_kind<F>(fd: &pbo_protowire::FieldDescriptor, resolve: &mut F) -> NativeFieldKind
where
    F: FnMut(&str) -> ClassId,
{
    let repeated = fd.cardinality == Cardinality::Repeated;
    match fd.ty {
        FieldType::String | FieldType::Bytes => {
            if repeated {
                NativeFieldKind::RepStr
            } else {
                NativeFieldKind::Str
            }
        }
        FieldType::Message => {
            let child = resolve(fd.type_name.as_deref().expect("resolved schema"));
            if repeated {
                NativeFieldKind::RepMessage(child)
            } else {
                NativeFieldKind::MessagePtr(child)
            }
        }
        scalar => {
            let s = NativeScalar::of(scalar).expect("scalar type");
            if repeated {
                NativeFieldKind::RepScalar(s)
            } else {
                NativeFieldKind::Scalar(s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_protowire::workloads::paper_schema;
    use pbo_protowire::{FieldType as FT, SchemaBuilder};

    fn layout_of(schema: &pbo_protowire::Schema, name: &str) -> MessageMeta {
        compute_layout(schema.message(name).unwrap(), 1, StdLib::Libstdcxx, |_| 0)
    }

    #[test]
    fn small_message_is_40_bytes() {
        // §VI.C.3: "the serialized small message takes 15 bytes on the
        // wire, while the deserialized object size is 40 bytes."
        let schema = paper_schema();
        let meta = layout_of(&schema, "bench.Small");
        assert_eq!(meta.size, 40, "{meta:#?}");
        // vptr 8 | presence 4 | a@12 b@16 | c@24 (aligned) | d@32 | e@36.
        assert_eq!(meta.field(1).unwrap().offset, 12);
        assert_eq!(meta.field(2).unwrap().offset, 16);
        assert_eq!(meta.field(3).unwrap().offset, 24);
        assert_eq!(meta.field(4).unwrap().offset, 32);
        assert_eq!(meta.field(5).unwrap().offset, 36);
    }

    #[test]
    fn int_array_layout() {
        let schema = paper_schema();
        let meta = layout_of(&schema, "bench.IntArray");
        // vptr 8 | presence 4 | pad | vec triple @16..40.
        assert_eq!(meta.field(1).unwrap().offset, 16);
        assert_eq!(meta.size, 40);
        assert_eq!(
            meta.field(1).unwrap().kind,
            NativeFieldKind::RepScalar(NativeScalar::U32)
        );
    }

    #[test]
    fn char_array_layout() {
        let schema = paper_schema();
        let meta = layout_of(&schema, "bench.CharArray");
        // vptr 8 | presence 4 | pad | string @16..48.
        assert_eq!(meta.field(1).unwrap().offset, 16);
        assert_eq!(meta.size, 48);
    }

    #[test]
    fn empty_message_layout() {
        let schema = paper_schema();
        let meta = layout_of(&schema, "bench.Empty");
        assert_eq!(meta.size, 16); // vptr + presence word, padded
        assert!(meta.fields.is_empty());
    }

    #[test]
    fn libcxx_strings_shrink_the_class() {
        let schema = paper_schema();
        let gnu = compute_layout(
            schema.message("bench.CharArray").unwrap(),
            1,
            StdLib::Libstdcxx,
            |_| 0,
        );
        let llvm = compute_layout(
            schema.message("bench.CharArray").unwrap(),
            1,
            StdLib::Libcxx,
            |_| 0,
        );
        assert_eq!(gnu.size - llvm.size, 8); // 32 B vs 24 B string
    }

    #[test]
    fn presence_bits_allocated_for_optional_and_message() {
        let mut b = SchemaBuilder::new();
        b.message("Inner").scalar("x", 1, FT::Int32).finish();
        b.message("M")
            .scalar("plain", 1, FT::Int32)
            .optional("opt", 2, FT::Int32)
            .message_field("child", 3, "Inner")
            .repeated("rep", 4, FT::Int32)
            .finish();
        let s = b.build();
        let meta = compute_layout(s.message("M").unwrap(), 7, StdLib::Libstdcxx, |_| 3);
        assert_eq!(meta.field(1).unwrap().presence_bit, None);
        assert_eq!(meta.field(2).unwrap().presence_bit, Some(0));
        assert_eq!(meta.field(3).unwrap().presence_bit, Some(1));
        assert_eq!(meta.field(4).unwrap().presence_bit, None);
        assert_eq!(meta.field(3).unwrap().kind, NativeFieldKind::MessagePtr(3));
    }

    #[test]
    fn many_presence_fields_grow_the_bitfield() {
        let mut b = SchemaBuilder::new();
        let mut m = b.message("Wide");
        for i in 1..=40u32 {
            m = m.optional(&format!("f{i}"), i, FT::Int32);
        }
        m.finish();
        let s = b.build();
        let meta = compute_layout(s.message("Wide").unwrap(), 1, StdLib::Libstdcxx, |_| 0);
        assert_eq!(meta.presence_bytes, 8); // 40 bits → 2 words
        assert_eq!(meta.field(1).unwrap().offset, 16);
    }

    #[test]
    fn alignment_padding_between_fields() {
        let mut b = SchemaBuilder::new();
        b.message("P")
            .scalar("flag", 1, FT::Bool)
            .scalar("big", 2, FT::Double)
            .scalar("tail", 3, FT::Bool)
            .finish();
        let s = b.build();
        let meta = compute_layout(s.message("P").unwrap(), 1, StdLib::Libstdcxx, |_| 0);
        assert_eq!(meta.field(1).unwrap().offset, 12);
        assert_eq!(meta.field(2).unwrap().offset, 16); // aligned to 8
        assert_eq!(meta.field(3).unwrap().offset, 24);
        assert_eq!(meta.size, 32);
    }

    #[test]
    fn default_instance_carries_class_id() {
        let schema = paper_schema();
        let meta = compute_layout(
            schema.message("bench.Small").unwrap(),
            0xCAFE,
            StdLib::Libstdcxx,
            |_| 0,
        );
        let inst = meta.default_instance();
        assert_eq!(inst.len(), 40);
        assert_eq!(u64::from_le_bytes(inst[0..8].try_into().unwrap()), 0xCAFE);
        assert!(inst[8..].iter().all(|&b| b == 0));
    }

    #[test]
    fn layout_is_deterministic() {
        let schema = paper_schema();
        let a = layout_of(&schema, "bench.Small");
        let b = layout_of(&schema, "bench.Small");
        assert_eq!(a, b);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Builds a random flat message descriptor: up to 24 fields of
        /// random scalar/string types and cardinalities.
        fn arb_message() -> impl Strategy<Value = pbo_protowire::MessageDescriptor> {
            let field_types = prop_oneof![
                Just(FT::Int32),
                Just(FT::Int64),
                Just(FT::UInt32),
                Just(FT::UInt64),
                Just(FT::SInt32),
                Just(FT::SInt64),
                Just(FT::Bool),
                Just(FT::Fixed32),
                Just(FT::Fixed64),
                Just(FT::Float),
                Just(FT::Double),
                Just(FT::String),
                Just(FT::Bytes),
            ];
            proptest::collection::vec((field_types, 0u8..3), 1..24).prop_map(|fields| {
                let mut b = SchemaBuilder::new();
                let mut m = b.message("P");
                for (i, (ty, card)) in fields.iter().enumerate() {
                    let name = format!("f{i}");
                    let number = i as u32 + 1;
                    m = match card {
                        0 => m.scalar(&name, number, *ty),
                        1 => m.optional(&name, number, *ty),
                        _ => m.repeated(&name, number, *ty),
                    };
                }
                m.finish();
                let schema = b.build();
                (**schema.message("P").unwrap()).clone()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Layout invariants for arbitrary messages: fields aligned
            /// and non-overlapping, inside the object, behind the header;
            /// size a multiple of 8.
            #[test]
            fn random_layouts_are_well_formed(desc in arb_message()) {
                for lib in [StdLib::Libstdcxx, StdLib::Libcxx] {
                    let meta = compute_layout(&desc, 1, lib, |_| 0);
                    prop_assert_eq!(meta.size % 8, 0);
                    prop_assert!(meta.size >= VPTR_SIZE + meta.presence_bytes);
                    let mut spans: Vec<(usize, usize)> = meta
                        .fields
                        .iter()
                        .map(|f| (f.offset, f.offset + f.kind.slot_size(lib)))
                        .collect();
                    spans.sort();
                    let header_end = VPTR_SIZE + meta.presence_bytes;
                    for (i, f) in meta.fields.iter().enumerate() {
                        prop_assert_eq!(f.offset % f.kind.slot_align(lib), 0, "field {}", i);
                        prop_assert!(f.offset >= header_end);
                        prop_assert!(f.offset + f.kind.slot_size(lib) <= meta.size);
                    }
                    for w in spans.windows(2) {
                        prop_assert!(w[0].1 <= w[1].0, "fields overlap: {:?}", w);
                    }
                    // Presence bits unique and inside the bitfield.
                    let mut bits: Vec<u32> =
                        meta.fields.iter().filter_map(|f| f.presence_bit).collect();
                    bits.sort_unstable();
                    let n = bits.len();
                    bits.dedup();
                    prop_assert_eq!(bits.len(), n, "duplicate presence bits");
                    for b in bits {
                        prop_assert!((b as usize) < meta.presence_bytes * 8);
                    }
                }
            }

            /// The ADT wire format is lossless for arbitrary messages.
            #[test]
            fn adt_wire_roundtrip_random(desc in arb_message()) {
                let mut b = SchemaBuilder::new();
                let m = b.message("P");
                // Rebuild schema from the descriptor's fields.
                let mut m = m;
                for f in &desc.fields {
                    let name = f.name.clone();
                    m = match f.cardinality {
                        pbo_protowire::Cardinality::Singular => m.scalar(&name, f.number, f.ty),
                        pbo_protowire::Cardinality::Optional => m.optional(&name, f.number, f.ty),
                        pbo_protowire::Cardinality::Repeated => m.repeated(&name, f.number, f.ty),
                    };
                }
                m.finish();
                let schema = b.build();
                let adt = crate::table::Adt::from_schema(&schema, StdLib::Libstdcxx);
                let back = crate::table::Adt::from_bytes(&adt.to_bytes()).unwrap();
                prop_assert_eq!(back.abi_hash(), adt.abi_hash());
                prop_assert_eq!(back, adt);
            }
        }
    }
}
