//! `std::string` layouts with small-string optimization.
//!
//! §V.C: "Strings are byte containers composed of a pointer to the data, a
//! capacity, and a size. If strings are small enough, they are stored
//! directly in the instance without memory allocation … Both standard
//! libraries feature this optimization but have differences in the
//! implementation."
//!
//! The libstdc++ layout (Fig 6) is the paper's primary target:
//!
//! ```text
//! class std::string {            // 32 bytes, align 8
//!     char*  data;               // offset 0
//!     size_t size;               // offset 8
//!     union {                    // offset 16
//!         char   sso[16];        //   inline storage (15 chars + NUL)
//!         size_t capacity;       //   heap capacity when data != &sso
//!     };
//! };
//! ```
//!
//! `data == &sso` ⇔ the string is inline ("If the pointer to the data is
//! equal to the SSO buffer, no dynamic allocation is performed, storing at
//! most 15 characters").
//!
//! The simplified libc++ layout (24 bytes) keeps the paper's described
//! discriminator — "an SSO flag in the first bit of the capacity field" —
//! with fields ordered `{capacity|flag, size, data*}` and 22 inline bytes
//! in short mode. The real libc++ packs harder; what matters for the
//! reproduction is that *two distinct ABIs flow through the same writer and
//! view*, proving the layout-dispatch machinery the paper requires when
//! "the DPU … can then choose the std::string layout to use for
//! deserialization".

/// Which C++ standard library's `std::string` ABI to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum StdLib {
    /// GNU libstdc++ (32-byte string, SSO by pointer-equality). The
    /// default: "most Linux programs are based on libstdc++" (§V.C).
    #[default]
    Libstdcxx,
    /// LLVM libc++ (24-byte string, SSO flag bit in capacity), simplified.
    Libcxx,
}

impl StdLib {
    /// `sizeof(std::string)` under this ABI.
    pub fn string_size(self) -> usize {
        match self {
            StdLib::Libstdcxx => 32,
            StdLib::Libcxx => 24,
        }
    }

    /// `alignof(std::string)` (8 for both).
    pub fn string_align(self) -> usize {
        8
    }

    /// Maximum characters stored inline.
    pub fn sso_capacity(self) -> usize {
        match self {
            StdLib::Libstdcxx => 15,
            StdLib::Libcxx => 22,
        }
    }

    /// Writes a string struct into `struct_bytes` (exactly
    /// [`StdLib::string_size`] long).
    ///
    /// * `self_addr` — the **host** virtual address the struct itself will
    ///   occupy after the DMA copy (needed because SSO makes the struct
    ///   self-referential).
    /// * `data` — the string bytes. If they fit inline they are stored in
    ///   the SSO buffer; otherwise `heap_addr` (the host address of the
    ///   out-of-line copy the caller placed in the arena) is recorded.
    pub fn write_string(
        self,
        struct_bytes: &mut [u8],
        self_addr: u64,
        data_len: usize,
        heap_addr: u64,
        inline_data: Option<&[u8]>,
    ) {
        assert_eq!(struct_bytes.len(), self.string_size());
        match self {
            StdLib::Libstdcxx => {
                if data_len <= 15 {
                    let inline = inline_data.expect("inline data required for SSO");
                    assert_eq!(inline.len(), data_len);
                    // data -> &sso (offset 16 within the struct).
                    struct_bytes[0..8].copy_from_slice(&(self_addr + 16).to_le_bytes());
                    struct_bytes[8..16].copy_from_slice(&(data_len as u64).to_le_bytes());
                    struct_bytes[16..32].fill(0);
                    struct_bytes[16..16 + data_len].copy_from_slice(inline);
                } else {
                    struct_bytes[0..8].copy_from_slice(&heap_addr.to_le_bytes());
                    struct_bytes[8..16].copy_from_slice(&(data_len as u64).to_le_bytes());
                    // capacity == size for an exactly-sized arena string.
                    struct_bytes[16..24].copy_from_slice(&(data_len as u64).to_le_bytes());
                    struct_bytes[24..32].fill(0);
                }
            }
            StdLib::Libcxx => {
                if data_len <= 22 {
                    let inline = inline_data.expect("inline data required for SSO");
                    // Short form: flag bit 0 of byte 0 set, 7-bit size,
                    // bytes 2.. hold the data (simplified).
                    struct_bytes.fill(0);
                    struct_bytes[0] = ((data_len as u8) << 1) | 1;
                    struct_bytes[2..2 + data_len].copy_from_slice(inline);
                } else {
                    // Long form: capacity with flag bit clear.
                    struct_bytes[0..8].copy_from_slice(&((data_len as u64) << 1).to_le_bytes());
                    struct_bytes[8..16].copy_from_slice(&(data_len as u64).to_le_bytes());
                    struct_bytes[16..24].copy_from_slice(&heap_addr.to_le_bytes());
                }
            }
        }
    }

    /// Decodes a string struct: returns `(len, Loc)` where [`Loc`] says
    /// whether the bytes are inline (offset within the struct) or at a heap
    /// address.
    pub fn read_string(self, struct_bytes: &[u8], self_addr: u64) -> (usize, Loc) {
        assert_eq!(struct_bytes.len(), self.string_size());
        match self {
            StdLib::Libstdcxx => {
                let data = u64::from_le_bytes(struct_bytes[0..8].try_into().unwrap());
                let size = u64::from_le_bytes(struct_bytes[8..16].try_into().unwrap()) as usize;
                if data == self_addr + 16 {
                    (size, Loc::Inline { offset: 16 })
                } else {
                    (size, Loc::Heap { addr: data })
                }
            }
            StdLib::Libcxx => {
                if struct_bytes[0] & 1 == 1 {
                    let size = (struct_bytes[0] >> 1) as usize;
                    (size, Loc::Inline { offset: 2 })
                } else {
                    let size = u64::from_le_bytes(struct_bytes[8..16].try_into().unwrap()) as usize;
                    let data = u64::from_le_bytes(struct_bytes[16..24].try_into().unwrap());
                    (size, Loc::Heap { addr: data })
                }
            }
        }
    }
}

/// Where a string's bytes live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// Inside the struct at this byte offset (SSO).
    Inline {
        /// Offset of the first data byte within the string struct.
        offset: usize,
    },
    /// At an absolute host address (arena).
    Heap {
        /// Host virtual address of the first byte.
        addr: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libstdcxx_sso_roundtrip() {
        let lib = StdLib::Libstdcxx;
        let mut buf = vec![0u8; 32];
        lib.write_string(&mut buf, 0x7000, 5, 0, Some(b"hello"));
        let (len, loc) = lib.read_string(&buf, 0x7000);
        assert_eq!(len, 5);
        assert_eq!(loc, Loc::Inline { offset: 16 });
        assert_eq!(&buf[16..21], b"hello");
        // The data pointer literally points at the SSO buffer.
        assert_eq!(
            u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            0x7000 + 16
        );
    }

    #[test]
    fn libstdcxx_heap_roundtrip() {
        let lib = StdLib::Libstdcxx;
        let mut buf = vec![0u8; 32];
        lib.write_string(&mut buf, 0x7000, 100, 0xbeef_0000, None);
        let (len, loc) = lib.read_string(&buf, 0x7000);
        assert_eq!(len, 100);
        assert_eq!(loc, Loc::Heap { addr: 0xbeef_0000 });
    }

    #[test]
    fn libstdcxx_boundary_15_vs_16() {
        let lib = StdLib::Libstdcxx;
        let mut buf = vec![0u8; 32];
        let s15 = b"exactly15bytes!";
        assert_eq!(s15.len(), 15);
        lib.write_string(&mut buf, 0x10, 15, 0, Some(s15));
        assert!(matches!(lib.read_string(&buf, 0x10).1, Loc::Inline { .. }));
        lib.write_string(&mut buf, 0x10, 16, 0xabc0, None);
        assert!(matches!(lib.read_string(&buf, 0x10).1, Loc::Heap { .. }));
    }

    #[test]
    fn libcxx_sso_roundtrip() {
        let lib = StdLib::Libcxx;
        let mut buf = vec![0u8; 24];
        lib.write_string(&mut buf, 0x500, 10, 0, Some(b"0123456789"));
        let (len, loc) = lib.read_string(&buf, 0x500);
        assert_eq!(len, 10);
        assert_eq!(loc, Loc::Inline { offset: 2 });
        assert_eq!(&buf[2..12], b"0123456789");
    }

    #[test]
    fn libcxx_heap_roundtrip() {
        let lib = StdLib::Libcxx;
        let mut buf = vec![0u8; 24];
        lib.write_string(&mut buf, 0x500, 23, 0x1234, None);
        let (len, loc) = lib.read_string(&buf, 0x500);
        assert_eq!(len, 23);
        assert_eq!(loc, Loc::Heap { addr: 0x1234 });
    }

    #[test]
    fn libcxx_boundary_22_vs_23() {
        let lib = StdLib::Libcxx;
        let mut buf = vec![0u8; 24];
        let s22 = [b'x'; 22];
        lib.write_string(&mut buf, 0, 22, 0, Some(&s22));
        assert!(matches!(lib.read_string(&buf, 0).1, Loc::Inline { .. }));
    }

    #[test]
    fn sizes_and_capacities() {
        assert_eq!(StdLib::Libstdcxx.string_size(), 32);
        assert_eq!(StdLib::Libcxx.string_size(), 24);
        assert_eq!(StdLib::Libstdcxx.sso_capacity(), 15);
        assert_eq!(StdLib::Libcxx.sso_capacity(), 22);
    }

    #[test]
    fn empty_string_is_inline() {
        for lib in [StdLib::Libstdcxx, StdLib::Libcxx] {
            let mut buf = vec![0u8; lib.string_size()];
            lib.write_string(&mut buf, 0x40, 0, 0, Some(b""));
            let (len, loc) = lib.read_string(&buf, 0x40);
            assert_eq!(len, 0);
            assert!(matches!(loc, Loc::Inline { .. }));
        }
    }
}
