//! Programmatic native-object construction.
//!
//! The arena writer ([`crate::NativeWriter`]) is normally driven by the
//! wire parser, but nothing ties it to the wire: it is a
//! [`FieldSink`], and this builder drives the same sink from application
//! code. That is what *response-serialization offload* needs (§III.A):
//! the host's business logic constructs a native response object directly
//! inside its send-buffer block — pointers crafted against the client's
//! receive buffer — and the DPU later serializes it for the xRPC client.
//! The response never exists in wire form on the host.

use crate::table::Adt;
use crate::writer::{NativeWriter, WriteResult, WriterConfig};
use pbo_protowire::{DecodeError, FieldDescriptor, FieldSink, MessageDescriptor, Scalar, Schema};
use std::sync::Arc;

/// Errors raised while building.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// No field with that name in the current message.
    NoSuchField(String),
    /// Value kind does not match the field's declared type.
    Kind {
        /// The field.
        field: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Arena exhausted or writer rejected the value.
    Writer(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoSuchField(n) => write!(f, "no field named {n}"),
            BuildError::Kind { field, expected } => {
                write!(f, "field {field}: expected {expected}")
            }
            BuildError::Writer(m) => write!(f, "writer: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

fn werr(e: DecodeError) -> BuildError {
    BuildError::Writer(e.to_string())
}

/// Builds one native object in an arena, field by field.
///
/// Repeated fields are appended by calling the setter multiple times;
/// nested messages open with [`NativeBuilder::begin_message`] and close
/// with [`NativeBuilder::end_message`]. Field order is free.
pub struct NativeBuilder<'a> {
    writer: NativeWriter<'a>,
    schema: &'a Schema,
    /// Descriptor stack mirroring the writer's frame stack.
    descs: Vec<Arc<MessageDescriptor>>,
}

impl<'a> NativeBuilder<'a> {
    /// Starts building a `root`-typed object at the front of `arena`.
    /// `host_base` is the address `arena[0]` will occupy in the *reader's*
    /// address space (see [`WriterConfig`]).
    pub fn new(
        adt: &'a Adt,
        schema: &'a Schema,
        root: &Arc<MessageDescriptor>,
        arena: &'a mut [u8],
        host_base: u64,
    ) -> Result<Self, BuildError> {
        let writer =
            NativeWriter::new(adt, root, arena, WriterConfig { host_base }).map_err(werr)?;
        Ok(Self {
            writer,
            schema,
            descs: vec![root.clone()],
        })
    }

    fn field(&self, name: &str) -> Result<FieldDescriptor, BuildError> {
        self.descs
            .last()
            .expect("non-empty")
            .field_by_name(name)
            .cloned()
            .ok_or_else(|| BuildError::NoSuchField(name.to_string()))
    }

    /// Sets (or appends to, for repeated fields) a scalar field.
    pub fn scalar(&mut self, name: &str, value: Scalar) -> Result<&mut Self, BuildError> {
        let fd = self.field(name)?;
        self.writer.on_scalar(&fd, value).map_err(werr)?;
        Ok(self)
    }

    /// Convenience scalar setters.
    pub fn set_u64(&mut self, name: &str, v: u64) -> Result<&mut Self, BuildError> {
        self.scalar(name, Scalar::U64(v))
    }

    /// Sets a signed integer field.
    pub fn set_i64(&mut self, name: &str, v: i64) -> Result<&mut Self, BuildError> {
        self.scalar(name, Scalar::I64(v))
    }

    /// Sets a bool field.
    pub fn set_bool(&mut self, name: &str, v: bool) -> Result<&mut Self, BuildError> {
        self.scalar(name, Scalar::Bool(v))
    }

    /// Sets a float field.
    pub fn set_f32(&mut self, name: &str, v: f32) -> Result<&mut Self, BuildError> {
        self.scalar(name, Scalar::F32(v))
    }

    /// Sets a double field.
    pub fn set_f64(&mut self, name: &str, v: f64) -> Result<&mut Self, BuildError> {
        self.scalar(name, Scalar::F64(v))
    }

    /// Sets (or appends) a string field.
    pub fn set_str(&mut self, name: &str, v: &str) -> Result<&mut Self, BuildError> {
        let fd = self.field(name)?;
        self.writer.on_str(&fd, v).map_err(werr)?;
        Ok(self)
    }

    /// Sets (or appends) a bytes field.
    pub fn set_bytes(&mut self, name: &str, v: &[u8]) -> Result<&mut Self, BuildError> {
        let fd = self.field(name)?;
        self.writer.on_bytes(&fd, v).map_err(werr)?;
        Ok(self)
    }

    /// Opens a nested message field (singular sets it; repeated appends an
    /// element). Subsequent setters target the child until
    /// [`NativeBuilder::end_message`].
    pub fn begin_message(&mut self, name: &str) -> Result<&mut Self, BuildError> {
        let fd = self.field(name)?;
        if fd.ty != pbo_protowire::FieldType::Message {
            return Err(BuildError::Kind {
                field: name.to_string(),
                expected: "message",
            });
        }
        let child_name = fd.type_name.as_deref().expect("resolved schema");
        let child = self
            .schema
            .message(child_name)
            .expect("schema validated")
            .clone();
        self.writer.on_message_start(&fd, &child).map_err(werr)?;
        self.descs.push(child);
        Ok(self)
    }

    /// Closes the innermost nested message.
    pub fn end_message(&mut self) -> Result<&mut Self, BuildError> {
        if self.descs.len() <= 1 {
            return Err(BuildError::Writer("no open nested message".into()));
        }
        self.writer.on_message_end().map_err(werr)?;
        self.descs.pop();
        Ok(self)
    }

    /// Finishes the object; returns its arena placement.
    ///
    /// # Panics
    /// Panics if nested messages were left open (caller bug, symmetric
    /// with the writer's contract).
    pub fn finish(self) -> Result<WriteResult, BuildError> {
        assert_eq!(self.descs.len(), 1, "unclosed nested message");
        self.writer.finish().map_err(werr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sso::StdLib;
    use crate::view::NativeObject;
    use pbo_protowire::{FieldType, SchemaBuilder};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.message("Leaf")
            .scalar("x", 1, FieldType::Int32)
            .scalar("tag", 2, FieldType::String)
            .finish();
        b.message("Root")
            .scalar("id", 1, FieldType::UInt64)
            .scalar("name", 2, FieldType::String)
            .repeated("nums", 3, FieldType::UInt32)
            .message_field("leaf", 4, "Leaf")
            .repeated_message("leaves", 5, "Leaf")
            .scalar("ratio", 6, FieldType::Double)
            .finish();
        b.build()
    }

    fn aligned_arena(len: usize) -> Vec<u8> {
        vec![0u64; len.div_ceil(8)]
            .into_iter()
            .flat_map(u64::to_ne_bytes)
            .collect()
    }

    #[test]
    fn build_and_read_back() {
        let schema = schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let root = schema.message("Root").unwrap().clone();
        let mut arena = aligned_arena(4096);
        let skew = (8 - arena.as_ptr() as usize % 8) % 8;
        let window = &mut arena[skew..];
        let host_base = window.as_ptr() as u64;

        let mut b = NativeBuilder::new(&adt, &schema, &root, window, host_base).unwrap();
        b.set_u64("id", 42).unwrap();
        b.set_str("name", "a response built by hand").unwrap();
        for n in [7u64, 8, 9] {
            b.set_u64("nums", n).unwrap();
        }
        b.begin_message("leaf").unwrap();
        b.set_i64("x", -5).unwrap();
        b.set_str("tag", "nested").unwrap();
        b.end_message().unwrap();
        for i in 0..2 {
            b.begin_message("leaves").unwrap();
            b.set_i64("x", i * 100).unwrap();
            b.end_message().unwrap();
        }
        b.set_f64("ratio", 0.125).unwrap();
        let result = b.finish().unwrap();
        assert_eq!(result.root_offset, 0);

        let class = adt.class_id("Root").unwrap();
        let arena_ro = &arena[skew..];
        let v = NativeObject::from_slice(&adt, class, arena_ro, 0).unwrap();
        assert_eq!(v.get_u64(1).unwrap(), 42);
        assert_eq!(v.get_str(2).unwrap(), "a response built by hand");
        let nums = v.get_repeated(3).unwrap();
        assert_eq!(nums.len(), 3);
        assert_eq!(nums.u32_at(2).unwrap(), 9);
        let leaf = v.get_message(4).unwrap().unwrap();
        assert_eq!(leaf.get_i32(1).unwrap(), -5);
        assert_eq!(leaf.get_str(2).unwrap(), "nested");
        let leaves = v.get_repeated(5).unwrap();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves.message_at(1).unwrap().get_i32(1).unwrap(), 100);
        assert_eq!(v.get_f64(6).unwrap(), 0.125);
    }

    #[test]
    fn unknown_field_rejected() {
        let schema = schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let root = schema.message("Root").unwrap().clone();
        let mut arena = aligned_arena(1024);
        let skew = (8 - arena.as_ptr() as usize % 8) % 8;
        let window = &mut arena[skew..];
        let host_base = window.as_ptr() as u64;
        let mut b = NativeBuilder::new(&adt, &schema, &root, window, host_base).unwrap();
        assert!(matches!(
            b.set_u64("ghost", 1),
            Err(BuildError::NoSuchField(_))
        ));
    }

    #[test]
    fn arena_exhaustion_is_reported() {
        let schema = schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let root = schema.message("Root").unwrap().clone();
        let mut tiny = aligned_arena(16); // smaller than the object
        let skew = (8 - tiny.as_ptr() as usize % 8) % 8;
        let window = &mut tiny[skew..];
        let host_base = window.as_ptr() as u64;
        assert!(matches!(
            NativeBuilder::new(&adt, &schema, &root, window, host_base),
            Err(BuildError::Writer(_))
        ));
    }

    #[test]
    fn begin_message_on_scalar_field_rejected() {
        let schema = schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let root = schema.message("Root").unwrap().clone();
        let mut arena = aligned_arena(1024);
        let skew = (8 - arena.as_ptr() as usize % 8) % 8;
        let window = &mut arena[skew..];
        let host_base = window.as_ptr() as u64;
        let mut b = NativeBuilder::new(&adt, &schema, &root, window, host_base).unwrap();
        assert!(matches!(
            b.begin_message("id"),
            Err(BuildError::Kind { .. })
        ));
        assert!(matches!(b.end_message(), Err(BuildError::Writer(_))));
    }
}
