//! In-place arena deserialization: the DPU-side native-object writer.
//!
//! This is the offload's core trick (§III.B, §V.C): the DPU deserializes
//! into its *send buffer* while crafting every pointer against the **host**
//! address the bytes will occupy after the RDMA write — possible because
//! the send buffer mirrors the remote receive buffer byte-for-byte, so
//! `host_address = host_base + arena_offset`. When the block lands, the
//! object graph is immediately valid on the host: "a request's pointer on
//! the client side x will have the value x on the server side".
//!
//! The writer is a [`FieldSink`]; the stack-based wire parser
//! ([`pbo_protowire::StackDeserializer`]) drives it. Construction details:
//!
//! * objects are bump-allocated ("fields are allocated from a stack, also
//!   known as arena buffer", §II.B) and initialized from their class's
//!   default instance (class-id word = the vptr trick of §V.B, strings
//!   pre-pointed at their own SSO buffers);
//! * strings ≤ SSO capacity live inline; longer ones get an arena copy and
//!   a heap-form struct (§V.C);
//! * repeated fields accumulate in reusable scratch space and are flushed
//!   to a contiguous arena array when their message frame closes, yielding
//!   `std::vector`-shaped triples.

use crate::layout::{ClassId, FieldMeta, NativeFieldKind, NativeScalar};
use crate::sso::StdLib;
use crate::table::Adt;
use pbo_protowire::{DecodeError, FieldDescriptor, FieldSink, MessageDescriptor, Scalar};
use std::sync::Arc;

/// Writer configuration.
#[derive(Clone, Copy, Debug)]
pub struct WriterConfig {
    /// Host virtual address that arena offset 0 will occupy after the DMA
    /// copy. Must be 8-aligned (the protocol aligns payloads to 8, §IV.A).
    pub host_base: u64,
}

/// Result of a completed deserialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteResult {
    /// Arena offset of the root object.
    pub root_offset: usize,
    /// Total arena bytes consumed (objects + out-of-line data).
    pub used: usize,
    /// Host pointers crafted into the object graph (string data pointers,
    /// vector triples, message pointers). This is exactly the number of
    /// fixups a *non*-shared-address-space design would have to apply on
    /// the receiver — the cost §III.B's mirroring eliminates.
    pub pointers: usize,
}

enum Scratch {
    /// Raw little-endian element bytes for repeated scalars.
    Raw { elem: NativeScalar, bytes: Vec<u8> },
    /// Repeated string/bytes elements: (inline bytes | arena offset, len).
    Strs(Vec<StrElem>),
    /// Host pointers to repeated child objects.
    Ptrs(Vec<u64>),
}

struct StrElem {
    /// `Ok(bytes)` when short enough for SSO; `Err(arena_off)` otherwise.
    data: Result<Vec<u8>, usize>,
    len: usize,
}

struct Frame {
    class: ClassId,
    obj_off: usize,
    rep: Vec<(u32, Scratch)>,
}

/// The arena writer. One instance deserializes one message into one arena.
pub struct NativeWriter<'a> {
    adt: &'a Adt,
    buf: &'a mut [u8],
    cursor: usize,
    host_base: u64,
    frames: Vec<Frame>,
    root_off: usize,
    pointers: usize,
}

impl<'a> NativeWriter<'a> {
    /// Creates a writer that will build a `root` object at the start of
    /// `buf` (the block's payload arena).
    pub fn new(
        adt: &'a Adt,
        root: &MessageDescriptor,
        buf: &'a mut [u8],
        cfg: WriterConfig,
    ) -> Result<Self, DecodeError> {
        assert_eq!(cfg.host_base % 8, 0, "host base must be 8-aligned");
        let class = adt
            .class_id(&root.name)
            .map_err(|e| DecodeError::Sink(e.to_string()))?;
        let mut w = Self {
            adt,
            buf,
            cursor: 0,
            host_base: cfg.host_base,
            frames: Vec::with_capacity(4),
            root_off: 0,
            pointers: 0,
        };
        let obj_off = w.alloc_object(class)?;
        w.root_off = obj_off;
        w.frames.push(Frame {
            class,
            obj_off,
            rep: Vec::new(),
        });
        Ok(w)
    }

    /// Completes the root object (flushing its repeated fields) and
    /// returns where it lives.
    pub fn finish(mut self) -> Result<WriteResult, DecodeError> {
        assert_eq!(self.frames.len(), 1, "unbalanced message frames");
        let frame = self.frames.pop().expect("root frame");
        self.flush_frame(frame)?;
        Ok(WriteResult {
            root_offset: self.root_off,
            used: self.cursor,
            pointers: self.pointers,
        })
    }

    fn stdlib(&self) -> StdLib {
        self.adt.stdlib()
    }

    fn alloc(&mut self, size: usize, align: usize) -> Result<usize, DecodeError> {
        let off = self.cursor.div_ceil(align) * align;
        let end = off.checked_add(size).ok_or_else(arena_full)?;
        if end > self.buf.len() {
            return Err(arena_full());
        }
        self.cursor = end;
        Ok(off)
    }

    /// Allocates and default-initializes one object of `class`.
    fn alloc_object(&mut self, class: ClassId) -> Result<usize, DecodeError> {
        // Borrow the metadata from the table's lifetime, not from `self`,
        // so no per-object clone (and no allocation) is needed — the
        // datapath must stay allocation-free (§VI.C.5).
        let adt: &'a Adt = self.adt;
        let meta = adt
            .class(class)
            .map_err(|e| DecodeError::Sink(e.to_string()))?;
        let off = self.alloc(meta.size, meta.align)?;
        let lib = self.stdlib();
        let obj = &mut self.buf[off..off + meta.size];
        obj.fill(0);
        obj[0..8].copy_from_slice(&(meta.class_id as u64).to_le_bytes());
        // Pre-point every singular string at its own SSO buffer, empty —
        // the per-location part of default-instance initialization.
        let mut ptrs = 0;
        for f in &meta.fields {
            if f.kind == NativeFieldKind::Str {
                let self_addr = self.host_base + (off + f.offset) as u64;
                let slot = &mut obj[f.offset..f.offset + lib.string_size()];
                lib.write_string(slot, self_addr, 0, 0, Some(b""));
                ptrs += 1;
            }
        }
        self.pointers += ptrs;
        Ok(off)
    }

    fn frame(&self) -> &Frame {
        self.frames.last().expect("active frame")
    }

    fn field_meta(&self, number: u32) -> Result<FieldMeta, DecodeError> {
        let meta = self
            .adt
            .class(self.frame().class)
            .map_err(|e| DecodeError::Sink(e.to_string()))?;
        // FieldMeta is plain data (no heap fields): this clone is a copy.
        meta.field(number)
            .cloned()
            .ok_or_else(|| DecodeError::Sink(format!("field {number} missing from ADT")))
    }

    fn set_presence(&mut self, fm: &FieldMeta) {
        if let Some(bit) = fm.presence_bit {
            let obj_off = self.frame().obj_off;
            let byte = obj_off + crate::layout::PRESENCE_OFFSET + (bit / 8) as usize;
            self.buf[byte] |= 1 << (bit % 8);
        }
    }

    fn scratch_for(&mut self, number: u32, make: impl FnOnce() -> Scratch) -> &mut Scratch {
        let frame = self.frames.last_mut().expect("active frame");
        if let Some(i) = frame.rep.iter().position(|(n, _)| *n == number) {
            &mut frame.rep[i].1
        } else {
            frame.rep.push((number, make()));
            &mut frame.rep.last_mut().expect("just pushed").1
        }
    }

    fn write_scalar_at(buf: &mut [u8], off: usize, s: NativeScalar, v: Scalar) {
        match (s, v) {
            (NativeScalar::Bool, Scalar::Bool(b)) => buf[off] = b as u8,
            (NativeScalar::I32, Scalar::I64(x)) => {
                buf[off..off + 4].copy_from_slice(&(x as i32).to_le_bytes())
            }
            (NativeScalar::U32, Scalar::U64(x)) => {
                buf[off..off + 4].copy_from_slice(&(x as u32).to_le_bytes())
            }
            (NativeScalar::I64, Scalar::I64(x)) => {
                buf[off..off + 8].copy_from_slice(&x.to_le_bytes())
            }
            (NativeScalar::U64, Scalar::U64(x)) => {
                buf[off..off + 8].copy_from_slice(&x.to_le_bytes())
            }
            (NativeScalar::F32, Scalar::F32(x)) => {
                buf[off..off + 4].copy_from_slice(&x.to_le_bytes())
            }
            (NativeScalar::F64, Scalar::F64(x)) => {
                buf[off..off + 8].copy_from_slice(&x.to_le_bytes())
            }
            (s, v) => unreachable!("scalar kind mismatch: {s:?} vs {v:?}"),
        }
    }

    fn push_scalar_raw(bytes: &mut Vec<u8>, s: NativeScalar, v: Scalar) {
        match (s, v) {
            (NativeScalar::Bool, Scalar::Bool(b)) => bytes.push(b as u8),
            (NativeScalar::I32, Scalar::I64(x)) => bytes.extend((x as i32).to_le_bytes()),
            (NativeScalar::U32, Scalar::U64(x)) => bytes.extend((x as u32).to_le_bytes()),
            (NativeScalar::I64, Scalar::I64(x)) => bytes.extend(x.to_le_bytes()),
            (NativeScalar::U64, Scalar::U64(x)) => bytes.extend(x.to_le_bytes()),
            (NativeScalar::F32, Scalar::F32(x)) => bytes.extend(x.to_le_bytes()),
            (NativeScalar::F64, Scalar::F64(x)) => bytes.extend(x.to_le_bytes()),
            (s, v) => unreachable!("scalar kind mismatch: {s:?} vs {v:?}"),
        }
    }

    /// Writes a vector-triple header: begin/end/cap host pointers.
    fn write_vec_header(&mut self, slot_off: usize, data_off: usize, data_len: usize) {
        self.pointers += 3;
        let begin = if data_len == 0 {
            0
        } else {
            self.host_base + data_off as u64
        };
        let end = begin + data_len as u64;
        self.buf[slot_off..slot_off + 8].copy_from_slice(&begin.to_le_bytes());
        self.buf[slot_off + 8..slot_off + 16].copy_from_slice(&end.to_le_bytes());
        self.buf[slot_off + 16..slot_off + 24].copy_from_slice(&end.to_le_bytes());
    }

    fn flush_frame(&mut self, frame: Frame) -> Result<(), DecodeError> {
        let lib = self.stdlib();
        for (number, scratch) in frame.rep {
            let meta = self
                .adt
                .class(frame.class)
                .map_err(|e| DecodeError::Sink(e.to_string()))?;
            let fm = meta
                .field(number)
                .cloned()
                .ok_or_else(|| DecodeError::Sink(format!("field {number} missing")))?;
            let slot = frame.obj_off + fm.offset;
            match scratch {
                Scratch::Raw { elem, bytes } => {
                    let off = self.alloc(bytes.len(), elem.align().max(1))?;
                    self.buf[off..off + bytes.len()].copy_from_slice(&bytes);
                    self.write_vec_header(slot, off, bytes.len());
                }
                Scratch::Ptrs(ptrs) => {
                    let len = ptrs.len() * 8;
                    let off = self.alloc(len, 8)?;
                    for (i, p) in ptrs.iter().enumerate() {
                        self.buf[off + i * 8..off + i * 8 + 8].copy_from_slice(&p.to_le_bytes());
                    }
                    self.write_vec_header(slot, off, len);
                }
                Scratch::Strs(elems) => {
                    let ssize = lib.string_size();
                    let len = elems.len() * ssize;
                    self.pointers += elems.len();
                    let off = self.alloc(len, 8)?;
                    for (i, e) in elems.iter().enumerate() {
                        let struct_off = off + i * ssize;
                        let self_addr = self.host_base + struct_off as u64;
                        let (heap_addr, inline) = match &e.data {
                            Ok(bytes) => (0u64, Some(bytes.as_slice())),
                            Err(arena_off) => (self.host_base + *arena_off as u64, None),
                        };
                        let slot_bytes = &mut self.buf[struct_off..struct_off + ssize];
                        lib.write_string(slot_bytes, self_addr, e.len, heap_addr, inline);
                    }
                    self.write_vec_header(slot, off, len);
                }
            }
        }
        Ok(())
    }

    fn put_string(&mut self, fd: &FieldDescriptor, bytes: &[u8]) -> Result<(), DecodeError> {
        let fm = self.field_meta(fd.number)?;
        let lib = self.stdlib();
        match fm.kind {
            NativeFieldKind::Str => {
                self.pointers += 1;
                let obj_off = self.frame().obj_off;
                let slot = obj_off + fm.offset;
                if bytes.len() <= lib.sso_capacity() {
                    let self_addr = self.host_base + slot as u64;
                    let data = bytes.to_vec();
                    let slot_bytes = &mut self.buf[slot..slot + lib.string_size()];
                    lib.write_string(slot_bytes, self_addr, data.len(), 0, Some(&data));
                } else {
                    let data_off = self.alloc(bytes.len(), 8)?;
                    self.buf[data_off..data_off + bytes.len()].copy_from_slice(bytes);
                    let heap_addr = self.host_base + data_off as u64;
                    let self_addr = self.host_base + slot as u64;
                    let slot_bytes = &mut self.buf[slot..slot + lib.string_size()];
                    lib.write_string(slot_bytes, self_addr, bytes.len(), heap_addr, None);
                }
                self.set_presence(&fm);
                Ok(())
            }
            NativeFieldKind::RepStr => {
                let elem = if bytes.len() <= lib.sso_capacity() {
                    StrElem {
                        data: Ok(bytes.to_vec()),
                        len: bytes.len(),
                    }
                } else {
                    let data_off = self.alloc(bytes.len(), 8)?;
                    self.buf[data_off..data_off + bytes.len()].copy_from_slice(bytes);
                    StrElem {
                        data: Err(data_off),
                        len: bytes.len(),
                    }
                };
                match self.scratch_for(fd.number, || Scratch::Strs(Vec::new())) {
                    Scratch::Strs(v) => v.push(elem),
                    _ => unreachable!("scratch kind mismatch"),
                }
                Ok(())
            }
            other => Err(DecodeError::Sink(format!(
                "string wire value for non-string field {}: {other:?}",
                fd.number
            ))),
        }
    }
}

fn arena_full() -> DecodeError {
    DecodeError::Sink("arena exhausted".to_string())
}

impl FieldSink for NativeWriter<'_> {
    fn on_scalar(&mut self, fd: &FieldDescriptor, value: Scalar) -> Result<(), DecodeError> {
        let fm = self.field_meta(fd.number)?;
        match fm.kind {
            NativeFieldKind::Scalar(s) => {
                let off = self.frame().obj_off + fm.offset;
                Self::write_scalar_at(self.buf, off, s, value);
                self.set_presence(&fm);
                Ok(())
            }
            NativeFieldKind::RepScalar(s) => {
                match self.scratch_for(fd.number, || Scratch::Raw {
                    elem: s,
                    bytes: Vec::new(),
                }) {
                    Scratch::Raw { elem, bytes } => Self::push_scalar_raw(bytes, *elem, value),
                    _ => unreachable!("scratch kind mismatch"),
                }
                Ok(())
            }
            other => Err(DecodeError::Sink(format!(
                "scalar wire value for non-scalar field {}: {other:?}",
                fd.number
            ))),
        }
    }

    fn on_str(&mut self, fd: &FieldDescriptor, s: &str) -> Result<(), DecodeError> {
        self.put_string(fd, s.as_bytes())
    }

    fn on_bytes(&mut self, fd: &FieldDescriptor, b: &[u8]) -> Result<(), DecodeError> {
        self.put_string(fd, b)
    }

    fn on_message_start(
        &mut self,
        fd: &FieldDescriptor,
        _desc: &Arc<MessageDescriptor>,
    ) -> Result<(), DecodeError> {
        let fm = self.field_meta(fd.number)?;
        match fm.kind {
            NativeFieldKind::MessagePtr(child) => {
                let child_off = self.alloc_object(child)?;
                let ptr = self.host_base + child_off as u64;
                self.pointers += 1;
                let slot = self.frame().obj_off + fm.offset;
                self.buf[slot..slot + 8].copy_from_slice(&ptr.to_le_bytes());
                self.set_presence(&fm);
                self.frames.push(Frame {
                    class: child,
                    obj_off: child_off,
                    rep: Vec::new(),
                });
                Ok(())
            }
            NativeFieldKind::RepMessage(child) => {
                let child_off = self.alloc_object(child)?;
                let ptr = self.host_base + child_off as u64;
                self.pointers += 1;
                match self.scratch_for(fd.number, || Scratch::Ptrs(Vec::new())) {
                    Scratch::Ptrs(v) => v.push(ptr),
                    _ => unreachable!("scratch kind mismatch"),
                }
                self.frames.push(Frame {
                    class: child,
                    obj_off: child_off,
                    rep: Vec::new(),
                });
                Ok(())
            }
            other => Err(DecodeError::Sink(format!(
                "message wire value for non-message field {}: {other:?}",
                fd.number
            ))),
        }
    }

    fn on_message_end(&mut self) -> Result<(), DecodeError> {
        assert!(self.frames.len() > 1, "unbalanced message end");
        let frame = self.frames.pop().expect("nested frame");
        self.flush_frame(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Adt;
    use pbo_protowire::workloads::{gen_small, paper_schema};
    use pbo_protowire::{encode_message, StackDeserializer};

    #[test]
    fn small_message_writes_40_bytes() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let msg = gen_small(&schema);
        let wire = encode_message(&msg);
        assert_eq!(wire.len(), 15);

        let mut arena = vec![0u8; 4096];
        let desc = schema.message("bench.Small").unwrap().clone();
        let mut w = NativeWriter::new(&adt, &desc, &mut arena, WriterConfig { host_base: 0x10000 })
            .unwrap();
        StackDeserializer::new(&schema)
            .deserialize(&desc, &wire, &mut w)
            .unwrap();
        let res = w.finish().unwrap();
        assert_eq!(res.root_offset, 0);
        // §VI.C.3: 15 B wire → 40 B object. No out-of-line data.
        assert_eq!(res.used, 40);

        // Raw-byte checks against the computed layout.
        assert_eq!(u32::from_le_bytes(arena[12..16].try_into().unwrap()), 300);
        assert_eq!(u32::from_le_bytes(arena[16..20].try_into().unwrap()), 200);
        assert_eq!(u64::from_le_bytes(arena[24..32].try_into().unwrap()), 77);
        assert_eq!(f32::from_le_bytes(arena[32..36].try_into().unwrap()), 1.5);
        assert_eq!(arena[36], 1);
    }

    #[test]
    fn arena_exhaustion_is_an_error_not_a_panic() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let desc = schema.message("bench.Small").unwrap().clone();
        let mut tiny = vec![0u8; 16]; // smaller than the 40-byte object
        let err = NativeWriter::new(&adt, &desc, &mut tiny, WriterConfig { host_base: 0 })
            .err()
            .expect("must fail");
        assert!(matches!(err, DecodeError::Sink(_)));
    }

    #[test]
    fn long_string_goes_to_arena_heap() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let desc = schema.message("bench.CharArray").unwrap().clone();
        let mut m = pbo_protowire::DynamicMessage::of(&schema, "bench.CharArray");
        let text = "x".repeat(100);
        m.set(1, pbo_protowire::Value::Str(text.clone()));
        let wire = encode_message(&m);

        let mut arena = vec![0u8; 4096];
        let host_base = 0x8000u64;
        let mut w = NativeWriter::new(&adt, &desc, &mut arena, WriterConfig { host_base }).unwrap();
        StackDeserializer::new(&schema)
            .deserialize(&desc, &wire, &mut w)
            .unwrap();
        let res = w.finish().unwrap();
        // 48-byte object + 100 bytes of string data.
        assert_eq!(res.used, 48 + 100);
        // The string struct at offset 16 points into the arena at host
        // coordinates.
        let ptr = u64::from_le_bytes(arena[16..24].try_into().unwrap());
        let size = u64::from_le_bytes(arena[24..32].try_into().unwrap());
        assert_eq!(size, 100);
        assert_eq!(ptr, host_base + 48);
        assert_eq!(&arena[48..148], text.as_bytes());
    }

    #[test]
    fn short_string_is_sso_inline() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let desc = schema.message("bench.CharArray").unwrap().clone();
        let mut m = pbo_protowire::DynamicMessage::of(&schema, "bench.CharArray");
        m.set(1, pbo_protowire::Value::Str("short".into()));
        let wire = encode_message(&m);

        let mut arena = vec![0u8; 4096];
        let host_base = 0x8000u64;
        let mut w = NativeWriter::new(&adt, &desc, &mut arena, WriterConfig { host_base }).unwrap();
        StackDeserializer::new(&schema)
            .deserialize(&desc, &wire, &mut w)
            .unwrap();
        let res = w.finish().unwrap();
        assert_eq!(res.used, 48); // no out-of-line data
        let ptr = u64::from_le_bytes(arena[16..24].try_into().unwrap());
        // data pointer = host address of the struct's own SSO buffer.
        assert_eq!(ptr, host_base + 16 + 16);
        assert_eq!(&arena[32..37], b"short");
    }

    #[test]
    fn repeated_ints_become_contiguous_array() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let desc = schema.message("bench.IntArray").unwrap().clone();
        let mut m = pbo_protowire::DynamicMessage::of(&schema, "bench.IntArray");
        for v in [10u64, 20, 30, 40] {
            m.push(1, pbo_protowire::Value::U64(v));
        }
        let wire = encode_message(&m);

        let mut arena = vec![0u8; 4096];
        let host_base = 0x4000u64;
        let mut w = NativeWriter::new(&adt, &desc, &mut arena, WriterConfig { host_base }).unwrap();
        StackDeserializer::new(&schema)
            .deserialize(&desc, &wire, &mut w)
            .unwrap();
        let res = w.finish().unwrap();
        // Object (40) + 16 bytes of u32 data.
        assert_eq!(res.used, 56);
        let begin = u64::from_le_bytes(arena[16..24].try_into().unwrap());
        let end = u64::from_le_bytes(arena[24..32].try_into().unwrap());
        assert_eq!(end - begin, 16);
        let data_off = (begin - host_base) as usize;
        let vals: Vec<u32> = (0..4)
            .map(|i| {
                u32::from_le_bytes(
                    arena[data_off + i * 4..data_off + i * 4 + 4]
                        .try_into()
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(vals, vec![10, 20, 30, 40]);
    }

    #[test]
    fn empty_repeated_field_is_null_vector() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let desc = schema.message("bench.IntArray").unwrap().clone();
        let mut arena = vec![0xffu8; 256]; // dirty memory: recycled block
        let mut w =
            NativeWriter::new(&adt, &desc, &mut arena, WriterConfig { host_base: 0 }).unwrap();
        StackDeserializer::new(&schema)
            .deserialize(&desc, &[], &mut w)
            .unwrap();
        w.finish().unwrap();
        // Vector header must be zeroed despite the dirty arena.
        assert!(arena[16..40].iter().all(|&b| b == 0));
    }

    #[test]
    fn recycled_arena_is_fully_reinitialized() {
        let schema = paper_schema();
        let adt = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let desc = schema.message("bench.Small").unwrap().clone();
        let msg = gen_small(&schema);
        let wire = encode_message(&msg);

        let run = |arena: &mut Vec<u8>| -> Vec<u8> {
            let mut w =
                NativeWriter::new(&adt, &desc, arena, WriterConfig { host_base: 0x10000 }).unwrap();
            StackDeserializer::new(&schema)
                .deserialize(&desc, &wire, &mut w)
                .unwrap();
            let res = w.finish().unwrap();
            arena[..res.used].to_vec()
        };
        let mut clean = vec![0u8; 512];
        let mut dirty = vec![0xabu8; 512];
        assert_eq!(run(&mut clean), run(&mut dirty));
    }
}
