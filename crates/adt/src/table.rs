//! The Accelerator Description Table.
//!
//! §V.B: "the ADT contains all the necessary information to deserialize any
//! protobuf message directly into a C++ object … a list of metadata for
//! each message type. The metadata of each class includes the default
//! instance, each field offset, and field type, including a pointer to the
//! child table if the field is also an object. … The ADT is transmitted
//! from the host to the DPU at the start of the application."
//!
//! [`Adt::from_schema`] is the analogue of the paper's `protoc` plugin that
//! generates `.adt.pb.{h,cc}`; [`Adt::to_bytes`] / [`Adt::from_bytes`] are
//! the transmission format; [`Adt::abi_hash`] guards the binary-
//! compatibility assumption (§V.A) — the host refuses to accept a DPU whose
//! table disagrees.

use crate::layout::{
    compute_layout, ClassId, FieldMeta, MessageMeta, NativeFieldKind, NativeScalar,
};
use crate::sso::StdLib;
use pbo_protowire::Schema;
use std::collections::BTreeMap;

/// Errors raised while building, encoding, or decoding an ADT.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdtError {
    /// A class id not present in the table was referenced.
    UnknownClass(u32),
    /// A message name not present in the table was looked up.
    UnknownName(String),
    /// The serialized table failed to parse.
    Malformed(String),
    /// The peer's table hashes differently — the two programs are not
    /// binary compatible.
    AbiMismatch {
        /// Our hash.
        ours: u64,
        /// The peer's hash.
        theirs: u64,
    },
    /// The peers agree a class exists but disagree on its native layout —
    /// schema skew (a field added, removed, retyped, or moved, or a
    /// different string ABI) pinned to the first offending class by the
    /// per-class layout digest.
    LayoutSkew {
        /// Name of the skewed class.
        class: String,
        /// Our layout digest for it.
        ours: u64,
        /// The peer's layout digest for it.
        theirs: u64,
    },
}

impl std::fmt::Display for AdtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdtError::UnknownClass(id) => write!(f, "unknown class id {id}"),
            AdtError::UnknownName(n) => write!(f, "unknown message type {n}"),
            AdtError::Malformed(m) => write!(f, "malformed ADT: {m}"),
            AdtError::AbiMismatch { ours, theirs } => {
                write!(f, "ABI mismatch: local {ours:#x}, remote {theirs:#x}")
            }
            AdtError::LayoutSkew {
                class,
                ours,
                theirs,
            } => {
                write!(
                    f,
                    "layout skew on class {class}: local {ours:#x}, remote {theirs:#x}"
                )
            }
        }
    }
}

impl std::error::Error for AdtError {}

/// The table: one [`MessageMeta`] per class, indexed by class id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Adt {
    classes: Vec<MessageMeta>,
    by_name: BTreeMap<String, ClassId>,
    stdlib: StdLib,
}

impl Adt {
    /// Builds the table from a schema. Class ids are assigned in sorted
    /// name order, making the construction deterministic on both sides.
    pub fn from_schema(schema: &Schema, stdlib: StdLib) -> Self {
        let mut by_name = BTreeMap::new();
        for (i, m) in schema.messages().enumerate() {
            by_name.insert(m.name.clone(), i as ClassId);
        }
        let classes = schema
            .messages()
            .enumerate()
            .map(|(i, m)| {
                compute_layout(m, i as ClassId, stdlib, |name| {
                    *by_name
                        .get(name)
                        .unwrap_or_else(|| panic!("unresolved message reference {name}"))
                })
            })
            .collect();
        Self {
            classes,
            by_name,
            stdlib,
        }
    }

    /// The string ABI in use.
    pub fn stdlib(&self) -> StdLib {
        self.stdlib
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Looks up a class by id.
    pub fn class(&self, id: ClassId) -> Result<&MessageMeta, AdtError> {
        self.classes
            .get(id as usize)
            .ok_or(AdtError::UnknownClass(id))
    }

    /// Looks up a class id by message name.
    pub fn class_id(&self, name: &str) -> Result<ClassId, AdtError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| AdtError::UnknownName(name.to_string()))
    }

    /// Looks up a class by message name.
    pub fn class_by_name(&self, name: &str) -> Result<&MessageMeta, AdtError> {
        self.class(self.class_id(name)?)
    }

    /// Iterates classes in id order.
    pub fn classes(&self) -> impl Iterator<Item = &MessageMeta> {
        self.classes.iter()
    }

    /// FNV-1a hash over every ABI-relevant number in the table: sizes,
    /// alignments, offsets, kinds, presence bits, and the string ABI —
    /// the paper's `sizeof`/`alignof`/`offsetof` agreement test in one
    /// number.
    pub fn abi_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.byte(match self.stdlib {
            StdLib::Libstdcxx => 1,
            StdLib::Libcxx => 2,
        });
        h.u64(self.classes.len() as u64);
        for c in &self.classes {
            h.bytes(c.name.as_bytes());
            h.u64(c.size as u64);
            h.u64(c.align as u64);
            h.u64(c.presence_bytes as u64);
            for f in &c.fields {
                h.u64(f.number as u64);
                h.u64(f.offset as u64);
                let (tag, aux) = kind_code(f.kind);
                h.byte(tag);
                h.u64(aux as u64);
                h.u64(f.presence_bit.map(|b| b as u64 + 1).unwrap_or(0));
                h.byte(f.is_utf8 as u8);
            }
        }
        h.finish()
    }

    /// Layout digest of a single class: FNV-1a over that class's
    /// ABI-relevant numbers plus the string ABI. Two peers that disagree
    /// on a class's digest would exchange native objects with
    /// differently-placed fields — the precise failure the per-class
    /// check pins down when a schema has skewed between deployments.
    pub fn class_digest(&self, name: &str) -> Result<u64, AdtError> {
        Ok(self.digest_of(self.class_by_name(name)?))
    }

    fn digest_of(&self, c: &MessageMeta) -> u64 {
        let mut h = Fnv::new();
        h.byte(match self.stdlib {
            StdLib::Libstdcxx => 1,
            StdLib::Libcxx => 2,
        });
        h.bytes(c.name.as_bytes());
        h.u64(c.size as u64);
        h.u64(c.align as u64);
        h.u64(c.presence_bytes as u64);
        for f in &c.fields {
            h.u64(f.number as u64);
            h.u64(f.offset as u64);
            let (tag, aux) = kind_code(f.kind);
            h.byte(tag);
            h.u64(aux as u64);
            h.u64(f.presence_bit.map(|b| b as u64 + 1).unwrap_or(0));
            h.byte(f.is_utf8 as u8);
        }
        h.finish()
    }

    /// Verifies binary compatibility with a peer's table.
    ///
    /// Classes present on both sides are compared by per-class layout
    /// digest first, so skew is reported with the offending class named
    /// ([`AdtError::LayoutSkew`]); anything the per-class pass cannot
    /// attribute (missing classes, different id assignment) falls back to
    /// the whole-table [`AdtError::AbiMismatch`].
    pub fn verify_compatible(&self, other: &Adt) -> Result<(), AdtError> {
        for c in &self.classes {
            let Ok(peer) = other.class_by_name(&c.name) else {
                return Err(AdtError::AbiMismatch {
                    ours: self.abi_hash(),
                    theirs: other.abi_hash(),
                });
            };
            let (ours, theirs) = (self.digest_of(c), other.digest_of(peer));
            if ours != theirs {
                return Err(AdtError::LayoutSkew {
                    class: c.name.clone(),
                    ours,
                    theirs,
                });
            }
        }
        let (ours, theirs) = (self.abi_hash(), other.abi_hash());
        if ours == theirs {
            Ok(())
        } else {
            Err(AdtError::AbiMismatch { ours, theirs })
        }
    }

    /// Serializes the table for the one-time host→DPU transfer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.classes.len() * 64);
        out.extend(b"ADT1");
        out.push(match self.stdlib {
            StdLib::Libstdcxx => 1,
            StdLib::Libcxx => 2,
        });
        put_u32(&mut out, self.classes.len() as u32);
        for c in &self.classes {
            put_u32(&mut out, c.name.len() as u32);
            out.extend(c.name.as_bytes());
            put_u32(&mut out, c.class_id);
            put_u32(&mut out, c.size as u32);
            put_u32(&mut out, c.presence_bytes as u32);
            put_u32(&mut out, c.fields.len() as u32);
            for f in &c.fields {
                put_u32(&mut out, f.number);
                let (tag, aux) = kind_code(f.kind);
                out.push(tag);
                put_u32(&mut out, aux);
                put_u32(&mut out, f.offset as u32);
                put_u32(&mut out, f.presence_bit.map(|b| b + 1).unwrap_or(0));
                out.push(f.is_utf8 as u8);
            }
        }
        let mut hashed = out;
        let mut h = Fnv::new();
        h.bytes(&hashed);
        let digest = h.finish();
        hashed.extend(digest.to_le_bytes());
        hashed
    }

    /// Parses a transmitted table.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AdtError> {
        let malformed = |m: &str| AdtError::Malformed(m.to_string());
        if bytes.len() < 17 || &bytes[0..4] != b"ADT1" {
            return Err(malformed("bad magic"));
        }
        let (body, digest_bytes) = bytes.split_at(bytes.len() - 8);
        let mut h = Fnv::new();
        h.bytes(body);
        let expect = u64::from_le_bytes(digest_bytes.try_into().unwrap());
        if h.finish() != expect {
            return Err(malformed("checksum mismatch"));
        }

        let mut pos = 4;
        let stdlib = match body[pos] {
            1 => StdLib::Libstdcxx,
            2 => StdLib::Libcxx,
            other => return Err(malformed(&format!("unknown stdlib {other}"))),
        };
        pos += 1;
        let n = get_u32(body, &mut pos).ok_or_else(|| malformed("truncated count"))? as usize;
        let mut classes = Vec::with_capacity(n);
        let mut by_name = BTreeMap::new();
        for _ in 0..n {
            let name_len =
                get_u32(body, &mut pos).ok_or_else(|| malformed("truncated name len"))? as usize;
            if pos + name_len > body.len() {
                return Err(malformed("truncated name"));
            }
            let name = String::from_utf8(body[pos..pos + name_len].to_vec())
                .map_err(|_| malformed("name not UTF-8"))?;
            pos += name_len;
            let class_id = get_u32(body, &mut pos).ok_or_else(|| malformed("truncated id"))?;
            let size = get_u32(body, &mut pos).ok_or_else(|| malformed("truncated size"))? as usize;
            let presence_bytes =
                get_u32(body, &mut pos).ok_or_else(|| malformed("truncated presence"))? as usize;
            let nf =
                get_u32(body, &mut pos).ok_or_else(|| malformed("truncated field count"))? as usize;
            let mut fields = Vec::with_capacity(nf);
            for _ in 0..nf {
                let number = get_u32(body, &mut pos).ok_or_else(|| malformed("truncated field"))?;
                let tag = *body.get(pos).ok_or_else(|| malformed("truncated tag"))?;
                pos += 1;
                let aux = get_u32(body, &mut pos).ok_or_else(|| malformed("truncated aux"))?;
                let offset =
                    get_u32(body, &mut pos).ok_or_else(|| malformed("truncated offset"))? as usize;
                let pb = get_u32(body, &mut pos).ok_or_else(|| malformed("truncated bit"))?;
                let is_utf8 = *body.get(pos).ok_or_else(|| malformed("truncated utf8"))? != 0;
                pos += 1;
                fields.push(FieldMeta {
                    number,
                    kind: kind_decode(tag, aux)
                        .ok_or_else(|| malformed(&format!("bad kind tag {tag}")))?,
                    offset,
                    presence_bit: if pb == 0 { None } else { Some(pb - 1) },
                    is_utf8,
                });
            }
            by_name.insert(name.clone(), class_id);
            classes.push(MessageMeta {
                class_id,
                name,
                size,
                align: 8,
                presence_bytes,
                fields,
                stdlib,
            });
        }
        if pos != body.len() {
            return Err(malformed("trailing bytes"));
        }
        // Ids must be dense and in order for index-based lookup.
        for (i, c) in classes.iter().enumerate() {
            if c.class_id as usize != i {
                return Err(malformed("non-dense class ids"));
            }
            for f in &c.fields {
                if let NativeFieldKind::MessagePtr(child) | NativeFieldKind::RepMessage(child) =
                    f.kind
                {
                    if child as usize >= classes.len() {
                        return Err(AdtError::UnknownClass(child));
                    }
                }
            }
        }
        Ok(Self {
            classes,
            by_name,
            stdlib,
        })
    }
}

fn kind_code(kind: NativeFieldKind) -> (u8, u32) {
    match kind {
        NativeFieldKind::Scalar(s) => (1, scalar_code(s)),
        NativeFieldKind::Str => (2, 0),
        NativeFieldKind::MessagePtr(c) => (3, c),
        NativeFieldKind::RepScalar(s) => (4, scalar_code(s)),
        NativeFieldKind::RepStr => (5, 0),
        NativeFieldKind::RepMessage(c) => (6, c),
    }
}

fn kind_decode(tag: u8, aux: u32) -> Option<NativeFieldKind> {
    Some(match tag {
        1 => NativeFieldKind::Scalar(scalar_decode(aux)?),
        2 => NativeFieldKind::Str,
        3 => NativeFieldKind::MessagePtr(aux),
        4 => NativeFieldKind::RepScalar(scalar_decode(aux)?),
        5 => NativeFieldKind::RepStr,
        6 => NativeFieldKind::RepMessage(aux),
        _ => return None,
    })
}

fn scalar_code(s: NativeScalar) -> u32 {
    match s {
        NativeScalar::Bool => 0,
        NativeScalar::I32 => 1,
        NativeScalar::U32 => 2,
        NativeScalar::I64 => 3,
        NativeScalar::U64 => 4,
        NativeScalar::F32 => 5,
        NativeScalar::F64 => 6,
    }
}

fn scalar_decode(code: u32) -> Option<NativeScalar> {
    Some(match code {
        0 => NativeScalar::Bool,
        1 => NativeScalar::I32,
        2 => NativeScalar::U32,
        3 => NativeScalar::I64,
        4 => NativeScalar::U64,
        5 => NativeScalar::F32,
        6 => NativeScalar::F64,
        _ => return None,
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend(v.to_le_bytes());
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let b = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(b.try_into().unwrap()))
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }
    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_protowire::workloads::paper_schema;
    use pbo_protowire::{FieldType as FT, SchemaBuilder};

    #[test]
    fn builds_from_paper_schema() {
        let adt = Adt::from_schema(&paper_schema(), StdLib::Libstdcxx);
        assert_eq!(adt.len(), 4);
        let small = adt.class_by_name("bench.Small").unwrap();
        assert_eq!(small.size, 40);
        // Ids dense and resolvable.
        for c in adt.classes() {
            assert_eq!(adt.class(c.class_id).unwrap().name, c.name);
        }
    }

    #[test]
    fn nested_references_resolve_to_child_ids() {
        let mut b = SchemaBuilder::new();
        b.message("Inner").scalar("x", 1, FT::Int32).finish();
        b.message("Outer")
            .message_field("inner", 1, "Inner")
            .repeated_message("many", 2, "Inner")
            .finish();
        let adt = Adt::from_schema(&b.build(), StdLib::Libstdcxx);
        let outer = adt.class_by_name("Outer").unwrap();
        let inner_id = adt.class_id("Inner").unwrap();
        assert_eq!(
            outer.field(1).unwrap().kind,
            NativeFieldKind::MessagePtr(inner_id)
        );
        assert_eq!(
            outer.field(2).unwrap().kind,
            NativeFieldKind::RepMessage(inner_id)
        );
    }

    #[test]
    fn wire_roundtrip_is_identity() {
        let adt = Adt::from_schema(&paper_schema(), StdLib::Libstdcxx);
        let bytes = adt.to_bytes();
        let back = Adt::from_bytes(&bytes).unwrap();
        assert_eq!(back, adt);
        assert_eq!(back.abi_hash(), adt.abi_hash());
    }

    #[test]
    fn corrupted_bytes_rejected() {
        let adt = Adt::from_schema(&paper_schema(), StdLib::Libstdcxx);
        let mut bytes = adt.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            Adt::from_bytes(&bytes),
            Err(AdtError::Malformed(_))
        ));
        assert!(matches!(
            Adt::from_bytes(b"not an adt"),
            Err(AdtError::Malformed(_))
        ));
        assert!(matches!(
            Adt::from_bytes(&bytes[..10]),
            Err(AdtError::Malformed(_))
        ));
    }

    #[test]
    fn abi_hash_detects_layout_differences() {
        let schema = paper_schema();
        let gnu = Adt::from_schema(&schema, StdLib::Libstdcxx);
        let llvm = Adt::from_schema(&schema, StdLib::Libcxx);
        assert_ne!(gnu.abi_hash(), llvm.abi_hash());
        // A different string ABI skews every class; the per-class pass
        // reports the first one by name.
        assert!(matches!(
            gnu.verify_compatible(&llvm),
            Err(AdtError::LayoutSkew { .. })
        ));
        assert!(gnu
            .verify_compatible(&Adt::from_schema(&schema, StdLib::Libstdcxx))
            .is_ok());
    }

    #[test]
    fn layout_skew_names_the_offending_class() {
        let a = Adt::from_schema(&paper_schema(), StdLib::Libstdcxx);
        // Same class names, but bench.Small lost a field: its layout (and
        // only its layout) digests differently.
        let mut b = SchemaBuilder::new();
        b.message("bench.Small")
            .scalar("a", 1, FT::UInt32)
            .scalar("c", 3, FT::UInt64)
            .finish();
        b.message("bench.IntArray")
            .repeated("values", 1, FT::UInt32)
            .finish();
        b.message("bench.CharArray")
            .scalar("text", 1, FT::String)
            .finish();
        b.message("bench.Empty").finish();
        b.message("bench.Skewed").finish();
        let skewed = Adt::from_schema(&b.build(), StdLib::Libstdcxx);
        match a.verify_compatible(&skewed) {
            Err(AdtError::LayoutSkew {
                class,
                ours,
                theirs,
            }) => {
                assert_eq!(class, "bench.Small");
                assert_ne!(ours, theirs);
                assert_eq!(a.class_digest("bench.Small").unwrap(), ours);
                assert_eq!(skewed.class_digest("bench.Small").unwrap(), theirs);
            }
            other => panic!("expected LayoutSkew, got {other:?}"),
        }
        // Unskewed classes digest identically across the two tables.
        assert_eq!(
            a.class_digest("bench.Empty").unwrap(),
            skewed.class_digest("bench.Empty").unwrap()
        );
    }

    #[test]
    fn missing_class_falls_back_to_abi_mismatch() {
        let a = Adt::from_schema(&paper_schema(), StdLib::Libstdcxx);
        let mut b = SchemaBuilder::new();
        b.message("something.Else").finish();
        let other = Adt::from_schema(&b.build(), StdLib::Libstdcxx);
        assert!(matches!(
            a.verify_compatible(&other),
            Err(AdtError::AbiMismatch { .. })
        ));
    }

    #[test]
    fn abi_hash_detects_schema_differences() {
        let a = Adt::from_schema(&paper_schema(), StdLib::Libstdcxx);
        let mut b = SchemaBuilder::new();
        b.message("bench.Small")
            .scalar("a", 1, FT::UInt32)
            // field 2 missing: different offsets downstream
            .scalar("c", 3, FT::UInt64)
            .finish();
        b.message("bench.IntArray")
            .repeated("values", 1, FT::UInt32)
            .finish();
        b.message("bench.CharArray")
            .scalar("text", 1, FT::String)
            .finish();
        b.message("bench.Empty").finish();
        let other = Adt::from_schema(&b.build(), StdLib::Libstdcxx);
        assert_ne!(a.abi_hash(), other.abi_hash());
    }

    #[test]
    fn unknown_lookups_error() {
        let adt = Adt::from_schema(&paper_schema(), StdLib::Libstdcxx);
        assert!(matches!(
            adt.class_by_name("Ghost"),
            Err(AdtError::UnknownName(_))
        ));
        assert!(matches!(adt.class(999), Err(AdtError::UnknownClass(999))));
    }
}
