//! A deterministic discrete-event simulation (DES) engine.
//!
//! The paper's datapath experiments run 16 DPU cores against 8 host cores
//! over a PCIe link — a configuration the reproduction container cannot
//! host natively. `pbo-dpusim` therefore replays the protocol logic under
//! this engine at paper scale: virtual time, deterministic event ordering,
//! and exact utilization accounting, so every figure is reproducible
//! bit-for-bit.
//!
//! Components:
//!
//! * [`Simulation`]/[`Model`]/[`Scheduler`] — a minimal event-driven core.
//!   The whole system under study is one [`Model`] handling its own event
//!   enum; the engine provides the clock, the event heap (with a tie-break
//!   sequence number for determinism), and cancellation.
//! * [`MultiServer`] — an analytic FIFO multi-server queue (c identical
//!   servers): submit jobs with arrival and service times, get exact start
//!   and completion times plus busy-time accounting. Models core pools and
//!   DMA engines without individual events per job.
//! * [`TallyStat`] / [`TimeWeightedStat`] — observation and time-weighted
//!   statistics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod server;
mod stats;

pub use engine::{Model, Scheduler, Simulation, Token};
pub use server::{Completion, MultiServer};
pub use stats::{TallyStat, TimeWeightedStat};
