//! Simulation statistics.

/// Running statistics over discrete observations (Welford's algorithm for
/// numerically stable variance).
#[derive(Clone, Debug, Default)]
pub struct TallyStat {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl TallyStat {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Self::default()
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample variance (NaN with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// Time-weighted average of a piecewise-constant signal (queue length,
/// credits available, in-flight blocks, …).
#[derive(Clone, Debug)]
pub struct TimeWeightedStat {
    last_t: u64,
    value: f64,
    area: f64,
    start_t: u64,
    max: f64,
}

impl TimeWeightedStat {
    /// Starts tracking at time `t0` with initial value `v0`.
    pub fn new(t0: u64, v0: f64) -> Self {
        Self {
            last_t: t0,
            value: v0,
            area: 0.0,
            start_t: t0,
            max: v0,
        }
    }

    /// Records that the signal changed to `v` at time `t` (non-decreasing).
    pub fn set(&mut self, t: u64, v: f64) {
        assert!(t >= self.last_t, "time must not go backwards");
        self.area += self.value * (t - self.last_t) as f64;
        self.last_t = t;
        self.value = v;
        self.max = self.max.max(v);
    }

    /// Adds `dv` to the signal at time `t`.
    pub fn add(&mut self, t: u64, dv: f64) {
        let v = self.value + dv;
        self.set(t, v);
    }

    /// Current value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Maximum observed value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[start, t]`.
    pub fn mean_until(&self, t: u64) -> f64 {
        assert!(t >= self.last_t);
        let total = (t - self.start_t) as f64;
        if total == 0.0 {
            return self.value;
        }
        (self.area + self.value * (t - self.last_t) as f64) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_mean_var() {
        let mut t = TallyStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.observe(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
        assert!((t.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn tally_empty_is_nan() {
        let t = TallyStat::new();
        assert!(t.mean().is_nan());
        assert!(t.variance().is_nan());
        assert!(t.min().is_nan());
    }

    #[test]
    fn time_weighted_mean() {
        let mut s = TimeWeightedStat::new(0, 0.0);
        s.set(10, 4.0); // 0 for [0,10)
        s.set(30, 2.0); // 4 for [10,30)
                        // 2 for [30,40)
        let mean = s.mean_until(40);
        // (0*10 + 4*20 + 2*10)/40 = 100/40 = 2.5
        assert!((mean - 2.5).abs() < 1e-12);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.current(), 2.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut s = TimeWeightedStat::new(0, 1.0);
        s.add(10, 2.0);
        s.add(20, -3.0);
        assert_eq!(s.current(), 0.0);
        // (1*10 + 3*10)/20 = 2.0
        assert!((s.mean_until(20) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_mean_is_current() {
        let s = TimeWeightedStat::new(5, 7.0);
        assert_eq!(s.mean_until(5), 7.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn backwards_time_panics() {
        let mut s = TimeWeightedStat::new(10, 0.0);
        s.set(5, 1.0);
    }
}
