//! The event-driven core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Cancellation token for a scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token(u64);

/// The system under simulation: one object owning all model state,
/// dispatching on its own event type. Keeping the model monolithic (rather
/// than actor-per-entity) sidesteps shared-mutability plumbing and keeps
/// handlers free to touch any part of the system.
pub trait Model {
    /// The event alphabet.
    type Event;

    /// Handles one event at virtual time `now`, scheduling follow-ups via
    /// `sched`.
    fn handle(&mut self, now: u64, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

struct Entry<E> {
    time: u64,
    seq: u64,
    token: Token,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest time first; FIFO among equal times via seq.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Schedule interface handed to [`Model::handle`].
pub struct Scheduler<E> {
    now: u64,
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<Token>,
    next_seq: u64,
    next_token: u64,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Self {
            now: 0,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            next_token: 0,
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `ev` at absolute time `at` (must be ≥ now).
    pub fn schedule_at(&mut self, at: u64, ev: E) -> Token {
        assert!(at >= self.now, "cannot schedule into the past");
        let token = Token(self.next_token);
        self.next_token += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            token,
            ev,
        }));
        token
    }

    /// Schedules `ev` after `delay` nanoseconds.
    pub fn schedule_in(&mut self, delay: u64, ev: E) -> Token {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, ev)
    }

    /// Cancels a scheduled event. Cancelling an already-fired or already-
    /// cancelled event is a no-op.
    pub fn cancel(&mut self, token: Token) {
        self.cancelled.insert(token);
    }

    /// Number of pending (non-cancelled, best-effort) events.
    pub fn pending(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    fn pop(&mut self) -> Option<(u64, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.token) {
                continue;
            }
            self.now = entry.time;
            return Some((entry.time, entry.ev));
        }
        None
    }
}

/// Drives a [`Model`] through its event stream.
pub struct Simulation<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    events_processed: u64,
}

impl<M: Model> Simulation<M> {
    /// Wraps a model with an empty schedule at t = 0.
    pub fn new(model: M) -> Self {
        Self {
            model,
            sched: Scheduler::new(),
            events_processed: 0,
        }
    }

    /// Access to the model (for seeding initial events via
    /// [`Simulation::scheduler`], inspecting results, …).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The scheduler, e.g. for priming initial events before running.
    pub fn scheduler(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.sched.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs until the event queue empties or virtual time would pass
    /// `until`. Events at exactly `until` still fire. Returns the number of
    /// events processed by this call.
    pub fn run_until(&mut self, until: u64) -> u64 {
        let mut n = 0;
        loop {
            // Peek: stop before consuming an event beyond the horizon.
            let next_time = loop {
                match self.sched.heap.peek() {
                    Some(Reverse(e)) if self.sched.cancelled.contains(&e.token) => {
                        let Reverse(e) = self.sched.heap.pop().expect("peeked");
                        self.sched.cancelled.remove(&e.token);
                    }
                    Some(Reverse(e)) => break Some(e.time),
                    None => break None,
                }
            };
            match next_time {
                Some(t) if t <= until => {
                    let (now, ev) = self.sched.pop().expect("peeked");
                    self.model.handle(now, ev, &mut self.sched);
                    self.events_processed += 1;
                    n += 1;
                }
                _ => {
                    // Advance the clock to the horizon even if idle.
                    if self.sched.now < until {
                        self.sched.now = until;
                    }
                    return n;
                }
            }
        }
    }

    /// Runs to quiescence, bounded by `max_events` as a runaway guard.
    ///
    /// # Panics
    /// Panics if the budget is exhausted — an unbounded event cascade is a
    /// model bug that must not look like success.
    pub fn run_to_completion(&mut self, max_events: u64) {
        let mut n = 0u64;
        while let Some((now, ev)) = self.sched.pop() {
            self.model.handle(now, ev, &mut self.sched);
            self.events_processed += 1;
            n += 1;
            assert!(
                n <= max_events,
                "event budget {max_events} exhausted at t={now} — runaway model?"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that records (time, id) pairs and optionally chains events.
    struct Recorder {
        log: Vec<(u64, u32)>,
        chain_until: u64,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: u64, ev: u32, sched: &mut Scheduler<u32>) {
            self.log.push((now, ev));
            if ev == 999 && now < self.chain_until {
                sched.schedule_in(10, 999);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain_until: 0,
        });
        sim.scheduler().schedule_at(30, 3);
        sim.scheduler().schedule_at(10, 1);
        sim.scheduler().schedule_at(20, 2);
        sim.scheduler().schedule_at(10, 4); // same time as 1, scheduled later
        sim.run_to_completion(100);
        assert_eq!(sim.model().log, vec![(10, 1), (10, 4), (20, 2), (30, 3)]);
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain_until: 0,
        });
        let t = sim.scheduler().schedule_at(5, 7);
        sim.scheduler().schedule_at(6, 8);
        sim.scheduler().cancel(t);
        sim.run_to_completion(10);
        assert_eq!(sim.model().log, vec![(6, 8)]);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain_until: 1000,
        });
        sim.scheduler().schedule_at(0, 999);
        let n = sim.run_until(55);
        // Events at 0, 10, 20, 30, 40, 50.
        assert_eq!(n, 6);
        assert_eq!(sim.now(), 55);
        let n2 = sim.run_until(100);
        assert_eq!(n2, 5); // 60..=100
    }

    #[test]
    fn chained_events_advance_time() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain_until: 45,
        });
        sim.scheduler().schedule_at(0, 999);
        sim.run_to_completion(1000);
        let times: Vec<u64> = sim.model().log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn runaway_model_trips_budget() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain_until: u64::MAX,
        });
        sim.scheduler().schedule_at(0, 999);
        sim.run_to_completion(50);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain_until: 0,
        });
        sim.scheduler().schedule_at(100, 1);
        sim.run_to_completion(10);
        // now == 100; this must panic:
        sim.scheduler().schedule_at(50, 2);
    }
}
