//! Analytic FIFO multi-server queue.
//!
//! Core pools (16 DPU cores, 8 host cores) and serial engines (a DMA
//! channel) are G/G/c queues whose job service times the datapath model
//! computes exactly. Rather than generating begin/end events per job, this
//! structure computes each job's start and completion time analytically:
//! a job arriving at `t` is assigned to the earliest-free server, starts at
//! `max(t, server_free)`, and completes after its service time. FIFO order
//! is preserved because submissions must be non-decreasing in arrival time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of submitting one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// When the job began service.
    pub start: u64,
    /// When the job completed.
    pub end: u64,
    /// Index of the serving server (0-based).
    pub server: usize,
}

/// `c` identical servers with a shared FIFO queue.
#[derive(Clone, Debug)]
pub struct MultiServer {
    /// (free_at, index) per server, min-heap.
    free_at: BinaryHeap<Reverse<(u64, usize)>>,
    servers: usize,
    busy_ns: u64,
    jobs: u64,
    last_arrival: u64,
    last_completion: u64,
}

impl MultiServer {
    /// Creates a pool of `servers` identical servers, all free at t = 0.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0);
        Self {
            free_at: (0..servers).map(|i| Reverse((0, i))).collect(),
            servers,
            busy_ns: 0,
            jobs: 0,
            last_arrival: 0,
            last_completion: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Submits a job arriving at `arrival` needing `service` ns.
    ///
    /// # Panics
    /// Panics if `arrival` decreases across calls (FIFO submission order is
    /// the caller's contract).
    pub fn submit(&mut self, arrival: u64, service: u64) -> Completion {
        assert!(
            arrival >= self.last_arrival,
            "submissions must be in arrival order"
        );
        self.last_arrival = arrival;
        let Reverse((free, idx)) = self.free_at.pop().expect("at least one server");
        let start = arrival.max(free);
        let end = start + service;
        self.free_at.push(Reverse((end, idx)));
        self.busy_ns += service;
        self.jobs += 1;
        self.last_completion = self.last_completion.max(end);
        Completion {
            start,
            end,
            server: idx,
        }
    }

    /// Earliest time any server is free.
    pub fn next_free(&self) -> u64 {
        self.free_at.peek().map(|Reverse((t, _))| *t).unwrap_or(0)
    }

    /// Total service time dispensed.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Completion time of the last-finishing job so far.
    pub fn makespan(&self) -> u64 {
        self.last_completion
    }

    /// Mean utilization of the pool over `[0, horizon]`:
    /// `busy / (c × horizon)`. The paper's "CPU usage, regarding cores used"
    /// is `utilization × c` — see [`MultiServer::cores_used`].
    pub fn utilization(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / (self.servers as f64 * horizon as f64)
    }

    /// Average number of busy cores over `[0, horizon]` — the unit of
    /// Fig 8c.
    pub fn cores_used(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / horizon as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes_jobs() {
        let mut s = MultiServer::new(1);
        let a = s.submit(0, 10);
        let b = s.submit(0, 10);
        let c = s.submit(25, 10);
        assert_eq!((a.start, a.end), (0, 10));
        assert_eq!((b.start, b.end), (10, 20));
        assert_eq!((c.start, c.end), (25, 35)); // idle gap 20..25
        assert_eq!(s.makespan(), 35);
        assert_eq!(s.busy_ns(), 30);
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut s = MultiServer::new(2);
        let a = s.submit(0, 100);
        let b = s.submit(0, 100);
        let c = s.submit(0, 100);
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 0);
        assert_ne!(a.server, b.server);
        assert_eq!(c.start, 100);
        assert_eq!(s.makespan(), 200);
    }

    #[test]
    fn utilization_accounting() {
        let mut s = MultiServer::new(4);
        for _ in 0..4 {
            s.submit(0, 50);
        }
        // 4 servers busy 50 ns each over a 100 ns horizon.
        assert!((s.utilization(100) - 0.5).abs() < 1e-12);
        assert!((s.cores_used(100) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn saturated_pool_throughput_matches_capacity() {
        // c=3 servers, service 10 ns, jobs arriving every 2 ns: capacity is
        // 0.3 jobs/ns; arrival rate 0.5 → backlog grows, completions at
        // capacity.
        let mut s = MultiServer::new(3);
        let mut last_end = 0;
        for i in 0..300u64 {
            let c = s.submit(i * 2, 10);
            last_end = last_end.max(c.end);
        }
        // 300 jobs × 10 ns / 3 servers = 1000 ns of work per server, plus a
        // small startup ramp while the first arrivals trickle in at 2 ns
        // spacing.
        assert!((1000..=1010).contains(&last_end), "makespan {last_end}");
        assert!((s.utilization(last_end) - 1.0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn out_of_order_arrivals_panic() {
        let mut s = MultiServer::new(1);
        s.submit(100, 1);
        s.submit(50, 1);
    }

    #[test]
    fn zero_horizon_is_safe() {
        let s = MultiServer::new(2);
        assert_eq!(s.utilization(0), 0.0);
        assert_eq!(s.cores_used(0), 0.0);
    }
}
