//! Minimal HTTP/1.0 server over `std::net::TcpListener`.
//!
//! Just enough HTTP for `curl`, Prometheus scrapers, and the `pbo-top`
//! poller: one request per connection, request line + headers parsed
//! leniently, response carries `Content-Length` and `Connection: close`.
//! No keep-alive, no TLS, no chunked encoding — deliberately, so the
//! whole transport stays dependency-free and auditable.

use crate::Telemetry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running scrape endpoint bound to a real TCP socket.
///
/// Accepts connections on a background thread until dropped or
/// [`shutdown`](TelemetryServer::shutdown). Bind to port `0` to let the
/// OS pick (see [`local_addr`](TelemetryServer::local_addr)).
pub struct TelemetryServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"` or `"127.0.0.1:0"`) and
    /// starts serving `telemetry` on a background thread.
    pub fn start(addr: &str, telemetry: Telemetry) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("pbo-telemetry".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One request per connection; errors on a single
                        // connection must not take the endpoint down.
                        let _ = serve_one(stream, &telemetry);
                    }
                }
            })?;
        Ok(Self {
            local_addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the serving thread.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.local_addr);
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one request, writes one response. Lenient: only the request
/// line matters; headers are drained and ignored.
fn serve_one(mut stream: TcpStream, telemetry: &Telemetry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(2000)))?;
    stream.set_write_timeout(Some(Duration::from_millis(2000)))?;

    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > 8192 {
            break; // header flood: answer what we have
        }
    }

    let request_line = String::from_utf8_lossy(&buf);
    let request_line = request_line.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or("/"));

    let resp = if method == "GET" || method == "HEAD" {
        telemetry.handle(path)
    } else {
        crate::HttpResponse {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "method not allowed\n".to_string(),
        }
    };

    let reason = match resp.status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    if method != "HEAD" {
        stream.write_all(resp.body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_metrics::Registry;

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .lines()
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_over_a_real_socket_repeatedly() {
        let reg = Arc::new(Registry::new());
        let hits = reg.counter("scrape_demo_total", "demo", &[]);
        hits.inc_by(5);
        let server = TelemetryServer::start("127.0.0.1:0", Telemetry::new(reg.clone())).unwrap();
        let addr = server.local_addr();

        let (status, head, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("Content-Length:"));
        assert!(body.contains("scrape_demo_total 5"), "{body}");

        // Second scrape sees the counter advance — the endpoint is live,
        // not a snapshot.
        hits.inc_by(2);
        let (_, _, body) = get(addr, "/metrics");
        assert!(body.contains("scrape_demo_total 7"), "{body}");

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"health_score\""));

        let (status, _, _) = get(addr, "/flight");
        assert_eq!(status, 404);
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let reg = Arc::new(Registry::new());
        let mut server = TelemetryServer::start("127.0.0.1:0", Telemetry::new(reg)).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The port is released: a new server can bind it.
        let again = TelemetryServer::start(&addr.to_string(), {
            let reg = Arc::new(Registry::new());
            Telemetry::new(reg)
        });
        assert!(again.is_ok());
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let reg = Arc::new(Registry::new());
        let server = TelemetryServer::start("127.0.0.1:0", Telemetry::new(reg)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");
    }
}
