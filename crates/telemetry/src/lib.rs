//! Live telemetry for the offload datapath: a scrape/introspection
//! endpoint over a minimal HTTP/1.0 server, health scoring, and flight
//! recorder dumps.
//!
//! The paper's methodology (§VI) scrapes a Prometheus client embedded in
//! the RPC library; this crate is that scrape surface plus the live
//! operational views built on it:
//!
//! * `GET /metrics` — Prometheus text exposition of the bound
//!   [`Registry`]. Each scrape first re-evaluates the bound
//!   [`SloTracker`] so `slo_burn_rate{slo}` and `slo_violations_total`
//!   are current at scrape time, and fires the `slo_burn` flight trigger
//!   when an objective *newly* starts burning above budget.
//! * `GET /healthz` — JSON health report: a 0–100 score aggregated from
//!   breaker state, replay journal depth, CRC failures, quarantines and
//!   SLO burn, plus the raw signals it was computed from.
//! * `GET /flight` — the most recent anomaly dump from the bound
//!   [`FlightRecorder`] as Chrome trace-event JSON (Perfetto-loadable);
//!   `404` while no trigger has fired.
//!
//! [`Telemetry`] is the transport-free handler — simnet tests and
//! embedders call [`Telemetry::handle`] directly. [`TelemetryServer`]
//! binds it to a real `std::net::TcpListener` for `curl`/Prometheus.

#![warn(missing_docs)]

mod http;

pub use http::TelemetryServer;

use parking_lot::Mutex;
use pbo_metrics::{Registry, SloStatus, SloTracker};
use pbo_trace::{triggers, Clock, FlightRecorder, Tracer};
use std::collections::HashSet;
use std::sync::Arc;

/// A rendered HTTP response, transport-agnostic.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            content_type,
            body,
        }
    }

    fn not_found(body: &str) -> Self {
        Self {
            status: 404,
            content_type: "application/json",
            body: format!("{{\"error\":{}}}\n", json_str(body)),
        }
    }
}

struct TelemetryInner {
    registry: Arc<Registry>,
    clock: Clock,
    slo: Mutex<Option<SloTracker>>,
    flight: Mutex<Option<FlightRecorder>>,
    /// Objectives currently burning above budget (edge-triggers the
    /// `slo_burn` flight dump once per breach episode, not per scrape).
    breached: Mutex<HashSet<String>>,
}

/// The transport-free telemetry handler. Cheap to clone; clones share
/// all state.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl Telemetry {
    /// Creates a handler over `registry`, stamped by the wall clock.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self::with_clock(registry, Clock::wall())
    }

    /// Creates a handler stamped by `clock` (virtual clocks make
    /// SLO-window behavior deterministic in tests).
    pub fn with_clock(registry: Arc<Registry>, clock: Clock) -> Self {
        Self {
            inner: Arc::new(TelemetryInner {
                registry,
                clock,
                slo: Mutex::new(None),
                flight: Mutex::new(None),
                breached: Mutex::new(HashSet::new()),
            }),
        }
    }

    /// Binds an SLO tracker: every `/metrics` and `/healthz` request
    /// re-evaluates it first.
    pub fn bind_slo(&self, slo: &SloTracker) {
        *self.inner.slo.lock() = Some(slo.clone());
    }

    /// Binds a flight recorder: `/flight` serves its newest dump, and
    /// SLO burn breaches fire its `slo_burn` trigger.
    pub fn bind_flight(&self, flight: &FlightRecorder) {
        *self.inner.flight.lock() = Some(flight.clone());
    }

    /// Convenience: adopts the flight recorder and SLO tracker already
    /// attached to `tracer` (the usual wiring — datapath components bind
    /// there).
    pub fn attach_tracer(&self, tracer: &Tracer) {
        if let Some(f) = tracer.flight() {
            self.bind_flight(&f);
        }
        if let Some(s) = tracer.slo() {
            self.bind_slo(&s);
        }
    }

    /// The registry this handler exposes.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// Re-evaluates the bound SLO tracker at the handler clock's now,
    /// edge-firing the `slo_burn` flight trigger for objectives that
    /// newly exceeded their budget. Returns the statuses (empty without
    /// a tracker).
    pub fn evaluate(&self) -> Vec<SloStatus> {
        let slo = self.inner.slo.lock().clone();
        let Some(slo) = slo else {
            return Vec::new();
        };
        let now = self.inner.clock.now_ns();
        let statuses = slo.evaluate(now);
        let flight = self.inner.flight.lock().clone();
        let mut breached = self.inner.breached.lock();
        for s in &statuses {
            if s.burn_rate > 1.0 {
                if breached.insert(s.name.clone()) {
                    if let Some(f) = &flight {
                        f.trigger(triggers::SLO_BURN, now);
                    }
                }
            } else {
                breached.remove(&s.name);
            }
        }
        statuses
    }

    /// Serves one request path. Unknown paths get a 404; `/` lists the
    /// available endpoints.
    pub fn handle(&self, path: &str) -> HttpResponse {
        let path = path.split('?').next().unwrap_or(path);
        match path {
            "/metrics" => {
                self.evaluate();
                HttpResponse::ok(
                    "text/plain; version=0.0.4; charset=utf-8",
                    self.inner.registry.expose(),
                )
            }
            "/healthz" => {
                let statuses = self.evaluate();
                HttpResponse::ok("application/json", self.health_json(&statuses))
            }
            "/flight" => {
                let flight = self.inner.flight.lock().clone();
                match flight.and_then(|f| f.last_dump()) {
                    Some(dump) => HttpResponse::ok("application/json", dump.to_chrome_json()),
                    None => HttpResponse::not_found("no flight dumps recorded"),
                }
            }
            "/" => HttpResponse::ok(
                "text/plain; charset=utf-8",
                "pbo-telemetry endpoints: /metrics /healthz /flight\n".to_string(),
            ),
            _ => HttpResponse::not_found("unknown path"),
        }
    }

    /// The health report served by `/healthz`, computed from registry
    /// aggregates and the given SLO verdicts.
    fn health_json(&self, statuses: &[SloStatus]) -> String {
        let reg = &self.inner.registry;
        let breaker_open = reg.gauge_sum("session_breaker_open") > 0;
        let journal_depth = reg.gauge_sum("session_journal_depth");
        let crc_failures = reg.counter_sum("crc_failures_total");
        let quarantined = reg.counter_sum("quarantined_requests_total");
        let reconnects = reg.counter_sum("session_reconnects_total");
        let degraded_calls = reg.counter_sum("session_degraded_calls_total");
        let breaker_trips = reg.counter_sum("session_breaker_trips_total");
        let burning = statuses.iter().any(|s| s.burn_rate > 1.0);

        let mut score: i64 = 100;
        if breaker_open {
            score -= 40;
        }
        if burning {
            score -= 20;
        }
        if crc_failures > 0 {
            score -= 10;
        }
        if quarantined > 0 {
            score -= 5;
        }
        score -= journal_depth.clamp(0, 10);
        score = score.clamp(0, 100);
        let status = if score >= 80 {
            "ok"
        } else if score >= 40 {
            "degraded"
        } else {
            "critical"
        };

        let mut slos = String::from("[");
        for (i, s) in statuses.iter().enumerate() {
            if i > 0 {
                slos.push(',');
            }
            slos.push_str(&format!(
                "{{\"name\":{},\"quantile_ns\":{},\"threshold_ns\":{},\"burn_rate\":{},\
                 \"violated\":{},\"window_count\":{}}}",
                json_str(&s.name),
                json_f64(s.quantile_ns),
                json_f64(s.threshold_ns),
                json_f64(s.burn_rate),
                s.violated,
                s.window_count
            ));
        }
        slos.push(']');

        format!(
            "{{\"status\":{},\"health_score\":{score},\"breaker_open\":{breaker_open},\
             \"breaker_trips\":{breaker_trips},\"journal_depth\":{journal_depth},\
             \"reconnects\":{reconnects},\"degraded_calls\":{degraded_calls},\
             \"quarantined\":{quarantined},\"crc_failures\":{crc_failures},\
             \"slo_burning\":{burning},\"slos\":{slos}}}\n",
            json_str(status)
        )
    }
}

/// JSON string literal with escaping for the characters our values can
/// contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite values (empty-window quantiles) become null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_metrics::{SlidingConfig, SloSpec};
    use pbo_trace::VirtualClock;

    fn telemetry() -> (Telemetry, Arc<Registry>, VirtualClock) {
        let reg = Arc::new(Registry::new());
        let vclock = VirtualClock::new();
        let t = Telemetry::with_clock(reg.clone(), Clock::virtual_from(&vclock));
        (t, reg, vclock)
    }

    #[test]
    fn metrics_endpoint_serves_exposition() {
        let (t, reg, _) = telemetry();
        reg.counter("rpc_requests_total", "reqs", &[("side", "server")])
            .inc_by(7);
        let resp = t.handle("/metrics");
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain"));
        assert!(resp.body.contains("rpc_requests_total{side=\"server\"} 7"));
    }

    #[test]
    fn healthz_reports_full_score_when_clean() {
        let (t, _, _) = telemetry();
        let resp = t.handle("/healthz");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"health_score\":100"), "{}", resp.body);
        assert!(resp.body.contains("\"status\":\"ok\""));
    }

    #[test]
    fn healthz_degrades_under_breaker_and_crc_failures() {
        let (t, reg, _) = telemetry();
        reg.gauge("session_breaker_open", "breaker", &[]).set(1);
        reg.counter("crc_failures_total", "crc", &[("side", "client")])
            .inc_by(3);
        let resp = t.handle("/healthz");
        assert!(resp.body.contains("\"health_score\":50"), "{}", resp.body);
        assert!(resp.body.contains("\"status\":\"degraded\""));
        assert!(resp.body.contains("\"breaker_open\":true"));
        assert!(resp.body.contains("\"crc_failures\":3"));
    }

    #[test]
    fn flight_is_404_until_a_trigger_fires() {
        let (t, _, _) = telemetry();
        assert_eq!(t.handle("/flight").status, 404);
        let flight = FlightRecorder::new(16, 2);
        t.bind_flight(&flight);
        assert_eq!(t.handle("/flight").status, 404);
        flight.trigger(triggers::MANUAL, 42);
        let resp = t.handle("/flight");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("flight:manual"));
    }

    #[test]
    fn slo_burn_breach_fires_flight_trigger_once_per_episode() {
        let (t, reg, vclock) = telemetry();
        let slo = SloTracker::new(
            reg.clone(),
            SlidingConfig {
                window_ns: 1_000_000,
                windows: 2,
                bounds: vec![100.0, 1_000.0, 10_000.0],
            },
        );
        slo.add(SloSpec::p99("deser_p99", "deserialize", 1_000.0));
        let flight = FlightRecorder::new(16, 4);
        t.bind_slo(&slo);
        t.bind_flight(&flight);

        // 10% of requests over threshold: burn 10x the 1% budget.
        for i in 0..100u64 {
            let v = if i % 10 == 0 { 5_000.0 } else { 200.0 };
            slo.observe_stage("deserialize", i * 100, v);
        }
        vclock.set_ns(50_000);
        t.handle("/metrics");
        assert_eq!(flight.trigger_count(), 1, "breach fires the trigger");
        t.handle("/metrics");
        assert_eq!(flight.trigger_count(), 1, "no re-fire while still burning");

        // Burn subsides (slow cohort ages out), then breaches again.
        for i in 0..100u64 {
            slo.observe_stage("deserialize", 10_000_000 + i, 200.0);
        }
        vclock.set_ns(10_000_100);
        t.handle("/metrics");
        assert_eq!(flight.trigger_count(), 1);
        for i in 0..100u64 {
            slo.observe_stage("deserialize", 10_500_000 + i, 5_000.0);
        }
        t.handle("/metrics");
        assert_eq!(flight.trigger_count(), 2, "new episode re-fires");
        assert_eq!(t.handle("/flight").status, 200);
    }

    #[test]
    fn unknown_paths_are_404_and_index_lists_endpoints() {
        let (t, _, _) = telemetry();
        assert_eq!(t.handle("/nope").status, 404);
        let idx = t.handle("/");
        assert_eq!(idx.status, 200);
        assert!(idx.body.contains("/metrics"));
        // Query strings are ignored.
        assert_eq!(t.handle("/healthz?verbose=1").status, 200);
    }

    #[test]
    fn json_helpers_escape_and_handle_non_finite() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.500");
    }
}
